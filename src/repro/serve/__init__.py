"""``repro.serve`` — the async HTTP serving layer.

The batch kernels and worker pools (PR 7) made *batches* fast; this
package makes that speed reachable from the network, where traffic
arrives as many concurrent single-query requests.  Three pieces:

* :mod:`repro.serve.coalescer` — a micro-batching queue.  Concurrent
  ``POST /search`` requests wait up to a configurable window (or until a
  batch fills) and are coalesced into **one**
  :meth:`~repro.engine.core.SimilarityEngine.search_batch` call, with the
  answers demuxed back per request — bit-identical to direct engine calls.
* :mod:`repro.serve.app` — a framework-free ASGI 3 application fronting a
  :class:`~repro.engine.core.SimilarityEngine` or
  :class:`~repro.engine.sharded.ShardedEngine`: ``POST /search``,
  ``GET /metrics`` (Prometheus text via
  :func:`repro.obs.export.to_prometheus`), ``GET /healthz`` (the
  ``repro check`` bundle validator) and ``GET /`` (an info document).
  Runnable under any ASGI server (``uvicorn repro.serve:create_app ...``).
* :mod:`repro.serve.server` — a dependency-free asyncio HTTP/1.1 server
  speaking the ASGI protocol, so ``repro serve`` works on a bare python
  install; it is what the CLI boots when uvicorn is not around.

Quick start::

    repro index corpus.txt corpus.bundle
    repro serve corpus.bundle --port 8080 --mmap --batch-window-ms 2

    curl -s localhost:8080/search -d '{"query": "similar string", "threshold": 0.8}'
    curl -s localhost:8080/metrics | grep serve_
    curl -s localhost:8080/healthz
"""

from .app import ServeApp, create_app
from .coalescer import BatchCoalescer, BatchKey
from .server import ServerThread, run

__all__ = [
    "BatchCoalescer",
    "BatchKey",
    "ServeApp",
    "ServerThread",
    "create_app",
    "run",
]
