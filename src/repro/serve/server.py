"""A dependency-free asyncio HTTP/1.1 server speaking ASGI 3.

``repro serve`` must work on a bare python install, and this container
ships no ASGI server — so this module is the fallback uvicorn: an
``asyncio.start_server`` loop that parses HTTP/1.1 requests, drives the
ASGI app (scope → receive → send), and writes responses back with
keep-alive.  It implements exactly what the :class:`~repro.serve.app.ServeApp`
routes need — small JSON bodies, Content-Length framing — and answers
411/431/400 for the rest; it is not a general-purpose web server.

Two entry points:

* :func:`run` — blocking serve-forever (what ``repro serve`` calls).
* :class:`ServerThread` — the same server on a background thread with an
  OS-assigned port, for tests and the load bench::

      with ServerThread(app) as server:
          requests.post(f"http://127.0.0.1:{server.port}/search", ...)
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["ServerThread", "run"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _ParseError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, List[Tuple[bytes, bytes]], bytes]]:
    """One request off the wire: (method, target, headers, body).

    ``None`` means the client closed the connection between requests.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between keep-alive requests
        raise _ParseError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise _ParseError(431, "request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise _ParseError(431, "request head too large")
    lines = head.split(b"\r\n")
    try:
        method, target, version = lines[0].decode("latin-1").split(" ", 2)
    except ValueError:
        raise _ParseError(400, f"malformed request line: {lines[0]!r}")
    if not version.startswith("HTTP/1."):
        raise _ParseError(400, f"unsupported protocol {version!r}")
    headers: List[Tuple[bytes, bytes]] = []
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(b":")
        if not separator:
            raise _ParseError(400, f"malformed header line: {line!r}")
        headers.append((name.strip().lower(), value.strip()))
    header_map: Dict[bytes, bytes] = dict(headers)
    if b"transfer-encoding" in header_map:
        # chunked bodies are out of scope for this tiny server
        raise _ParseError(411, "chunked bodies unsupported; send Content-Length")
    body = b""
    if b"content-length" in header_map:
        try:
            length = int(header_map[b"content-length"])
        except ValueError:
            raise _ParseError(400, "malformed Content-Length")
        if length > _MAX_BODY_BYTES:
            raise _ParseError(413, "request body over 1 MiB")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _ParseError(400, "truncated request body")
    return method, target, headers, body


def _scope(
    method: str, target: str, headers: List[Tuple[bytes, bytes]]
) -> Dict:
    path, separator, query = target.partition("?")
    return {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query.encode("latin-1") if separator else b"",
        "headers": headers,
        "server": None,
        "client": None,
    }


async def _handle_connection(app, reader, writer) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _ParseError as error:
                _write_response(
                    writer,
                    error.status,
                    [(b"content-type", b"text/plain")],
                    error.message.encode(),
                    keep_alive=False,
                )
                await writer.drain()
                return
            if request is None:
                return
            method, target, headers, body = request
            header_map = dict(headers)
            keep_alive = (
                header_map.get(b"connection", b"keep-alive").lower()
                != b"close"
            )
            if not await _dispatch(
                app, writer, _scope(method, target, headers), body, keep_alive
            ):
                return
            if not keep_alive:
                return
    # a misbehaving client connection must never take the server down
    # repro: noqa RA07 -- the connection is simply dropped
    except Exception:
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _dispatch(app, writer, scope, body: bytes, keep_alive: bool) -> bool:
    """Run the ASGI app for one request; False ends the connection."""
    received = False

    async def receive() -> Dict:
        nonlocal received
        if received:
            await asyncio.sleep(3600)  # the app over-read; park forever
            return {"type": "http.disconnect"}
        received = True
        return {"type": "http.request", "body": body, "more_body": False}

    state = {"status": None, "headers": [], "sent": False}
    chunks: List[bytes] = []

    async def send(message: Dict) -> None:
        if message["type"] == "http.response.start":
            state["status"] = message["status"]
            state["headers"] = list(message.get("headers", []))
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                state["sent"] = True

    try:
        await app(scope, receive, send)
    # an app crash answers 500; the traceback belongs to the app's own
    # error handling, not the transport
    # repro: noqa RA07 -- the failure is answered as a 500, not swallowed
    except Exception as error:
        if state["sent"]:
            return False  # response already committed; drop the connection
        _write_response(
            writer,
            500,
            [(b"content-type", b"text/plain")],
            f"{type(error).__name__}: {error}".encode(),
            keep_alive=False,
        )
        await writer.drain()
        return False
    if state["status"] is None:
        state["status"] = 500
        chunks = [b"app returned no response"]
        state["headers"] = [(b"content-type", b"text/plain")]
    _write_response(
        writer,
        int(state["status"]),
        state["headers"],
        b"".join(chunks),
        keep_alive=keep_alive,
    )
    await writer.drain()
    return True


def _write_response(
    writer, status: int, headers, body: bytes, *, keep_alive: bool
) -> None:
    reason = _REASONS.get(status, "Unknown")
    parts = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")]
    seen = set()
    for name, value in headers:
        seen.add(bytes(name).lower())
        parts.append(bytes(name) + b": " + bytes(value) + b"\r\n")
    if b"content-length" not in seen:
        parts.append(b"content-length: " + str(len(body)).encode() + b"\r\n")
    parts.append(
        b"connection: keep-alive\r\n" if keep_alive else b"connection: close\r\n"
    )
    parts.append(b"\r\n")
    parts.append(body)
    writer.write(b"".join(parts))


class _Lifespan:
    """Drives the app's single long-lived lifespan call.

    The ASGI spec gives an app ONE lifespan invocation that receives
    ``lifespan.startup`` and, much later, ``lifespan.shutdown`` — so the
    driver keeps the app task parked on ``receive()`` between the two
    phases instead of invoking the app twice.
    """

    def __init__(self, app) -> None:
        self._app = app
        self._to_app: asyncio.Queue = asyncio.Queue()
        self._from_app: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None

    async def startup(self) -> None:
        self._task = asyncio.ensure_future(
            self._app(
                {"type": "lifespan", "asgi": {"version": "3.0"}},
                self._to_app.get,
                self._from_app.put,
            )
        )
        await self._phase("startup")

    async def shutdown(self) -> None:
        if self._task is None or self._task.done():
            return
        await self._phase("shutdown")
        await self._task

    async def _phase(self, phase: str) -> None:
        if self._task is None:
            raise RuntimeError("lifespan phase before startup()")
        await self._to_app.put({"type": f"lifespan.{phase}"})
        reply = asyncio.ensure_future(self._from_app.get())
        await asyncio.wait(
            [reply, self._task], return_when=asyncio.FIRST_COMPLETED
        )
        if not reply.done():
            # the app returned (or raised) without completing the phase
            reply.cancel()
            error = self._task.exception()
            raise RuntimeError(
                f"app ended lifespan during {phase}"
                + (f": {error}" if error else "")
            )
        # repro: noqa RA11 -- reply is an asyncio task awaited to
        # completion just above; result() on a done task cannot block
        message = reply.result()
        if message["type"].endswith(".failed"):
            raise RuntimeError(
                f"app lifespan.{phase} failed: {message.get('message', '')}"
            )


async def serve(
    app,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    ready: Optional["threading.Event"] = None,
    port_holder: Optional[list] = None,
    stop: Optional[asyncio.Event] = None,
) -> None:
    """Serve ``app`` until ``stop`` is set (forever when ``stop`` is None)."""
    lifespan = _Lifespan(app)
    await lifespan.startup()
    server = await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, reader, writer),
        host,
        port,
        limit=_MAX_HEADER_BYTES,
    )
    try:
        if port_holder is not None:
            port_holder.append(server.sockets[0].getsockname()[1])
        if ready is not None:
            ready.set()
        async with server:
            if stop is None:
                await server.serve_forever()
            else:
                await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await lifespan.shutdown()


def run(app, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Blocking serve-forever (the ``repro serve`` entry point)."""
    try:
        asyncio.run(serve(app, host, port))
    except KeyboardInterrupt:
        pass


class ServerThread:
    """The server on a daemon thread — tests and benches talk real HTTP.

    ``port=0`` (the default) binds an OS-assigned free port, published as
    ``.port`` once ``__enter__``/``start`` returns.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "ServerThread":
        ready = threading.Event()
        ports: list = []

        def _main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._stop = asyncio.Event()
            try:
                loop.run_until_complete(
                    serve(
                        self.app,
                        self.host,
                        self.port,
                        ready=ready,
                        port_holder=ports,
                        stop=self._stop,
                    )
                )
            # repro: noqa RA07 -- surfaced to start()/stop() callers below
            except BaseException as error:
                self._error = error
                ready.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        if ports:
            self.port = ports[0]
        return self

    def stop(self, timeout: float = 10.0) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
