"""Request coalescing: many concurrent single queries, one batch call.

A serving process sees traffic as N concurrent requests, each carrying one
query; the engines are fastest when handed a whole batch (the vectorized
T-occurrence kernels amortize planning, decoding and numpy dispatch across
rows).  :class:`BatchCoalescer` bridges the two shapes: callers
:meth:`~BatchCoalescer.submit` one query each and block on a future, while
a single dispatcher thread groups compatible requests — same
:class:`BatchKey`, i.e. same threshold/metric — that arrive within a short
window into one ``search_batch`` call and demuxes the answers back.

Correctness contract
--------------------

* **Parity** — a coalesced request gets the exact
  :class:`~repro.search.result.SearchResult` a direct ``engine.search``
  call would return (``search_batch`` guarantees batch == serial).
* **No cross-request bleed** — requests with different thresholds or
  metrics are never batched together; each future resolves to its own
  query's answer, demuxed by position.
* **Failure isolation** — when a batch call raises, the batch is re-run
  one request at a time, so a poisoned request (bad threshold, searcher
  error) receives exactly its own exception and its innocent batchmates
  still get their results.

The dispatcher is also the engine's *serialization point*: every engine
call the coalescer makes happens on the one dispatcher thread, so the
engine never sees concurrent batch calls from the serving layer.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, List, NamedTuple, Optional, Sequence

from ..obs import TRACER as _TRACER
from ..obs.registry import MetricsRegistry

__all__ = ["BatchCoalescer", "BatchKey"]


class BatchKey(NamedTuple):
    """What must match for two requests to share one engine batch call."""

    metric: str
    threshold: float


class _PendingRequest:
    """One submitted query plus the telemetry the serving layer reads back.

    ``arrived_perf``/``dispatched`` are ``perf_counter`` readings (same
    clock as trace spans) bracketing the queue+coalesce wait, and
    ``batch_document`` is the trace document of the batch this request
    rode in (``None`` when tracing is off or the trace was sampled out).
    """

    __slots__ = (
        "query",
        "key",
        "future",
        "arrived",
        "arrived_perf",
        "dispatched",
        "batch_document",
    )

    def __init__(self, query: str, key: BatchKey, arrived: float) -> None:
        self.query = query
        self.key = key
        self.future: Future = Future()
        self.arrived = arrived
        self.arrived_perf = time.perf_counter()
        self.dispatched: Optional[float] = None
        self.batch_document: Optional[dict] = None


class BatchCoalescer:
    """Micro-batching queue in front of an engine.

    Parameters
    ----------
    run_batch:
        ``(queries, key) -> [SearchResult]`` — answers a whole batch
        sharing one :class:`BatchKey` (the app binds this to
        ``engine.search_batch``).
    run_one:
        ``(query, key) -> SearchResult`` — the single-query rescue path
        used to isolate failures when a batch call raises.
    window_s:
        How long the oldest pending request may wait for batchmates
        before its batch is dispatched anyway.
    max_batch:
        Dispatch immediately once this many same-key requests are
        pending (never hand the engine more than this per call).
    """

    def __init__(
        self,
        run_batch: Callable[[List[str], BatchKey], Sequence],
        run_one: Callable[[str, BatchKey], object],
        *,
        window_s: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._run_batch = run_batch
        self._run_one = run_one
        self.window_s = window_s
        self.max_batch = max_batch
        #: serve-layer telemetry, always on and private to this coalescer
        #: (rendered by ``GET /metrics`` alongside the engine registry)
        self.metrics = MetricsRegistry(enabled=True)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[_PendingRequest] = []
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._inflight = 0
        self.metrics.register_gauge("serve.queue.depth", self.pending_count)
        self.metrics.register_gauge(
            "serve.batch.inflight", lambda: self._inflight
        )

    # ------------------------------------------------------------------ #
    # caller side
    # ------------------------------------------------------------------ #
    def submit(self, query: str, key: BatchKey) -> Future:
        """Enqueue one request; the future resolves to ``(result, batch)``
        where ``batch`` is the size of the engine call it rode in."""
        return self.submit_request(query, key).future

    def submit_request(self, query: str, key: BatchKey) -> _PendingRequest:
        """:meth:`submit`, but returning the whole :class:`_PendingRequest`
        ticket — the serving layer reads its queue/dispatch timestamps and
        batch trace document after the future resolves."""
        request = _PendingRequest(query, key, time.monotonic())
        with self._wake:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._thread is None:
                self._start_locked()
            self._pending.append(request)
            self.metrics.inc("serve.requests")
            self._wake.notify_all()
        return request

    def pending_count(self) -> int:
        """Requests queued but not yet handed to the engine (the value the
        ``serve.queue.depth`` gauge and admission control read)."""
        with self._lock:
            return len(self._pending)

    def start(self) -> "BatchCoalescer":
        """Start the dispatcher thread (idempotent; submit() auto-starts)."""
        with self._wake:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._thread is None:
                self._start_locked()
        return self

    def _start_locked(self) -> None:
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-coalescer", daemon=True
        )
        self._thread.start()

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, flush what is pending, join the thread."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "BatchCoalescer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> dict:
        """Always-on coalescing counters for dashboards and the bench."""
        requests = self.metrics.counter("serve.requests")
        batches = self.metrics.counter("serve.batches")
        histogram = self.metrics.histograms.get("serve.batch_size")
        return {
            "requests": requests,
            "batches": batches,
            "coalescing_ratio": round(requests / batches, 3) if batches else 0.0,
            "mean_batch_size": (
                round(histogram.mean, 3) if histogram is not None else 0.0
            ),
            "max_batch_size": (
                int(histogram.max)
                if histogram is not None and histogram.count
                else 0
            ),
            "rescued_requests": self.metrics.counter("serve.rescued_requests"),
            "pending": self.pending_count(),
        }

    # ------------------------------------------------------------------ #
    # dispatcher side
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            if batch:
                self._flush(batch)

    def _take_batch(self) -> Optional[List[_PendingRequest]]:
        """Block until a batch is due; ``None`` means closed and drained."""
        with self._wake:
            while not self._pending:
                if self._closed:
                    return None
                self._wake.wait()
            # the head request anchors the batch: it has waited longest,
            # so its window decides when the batch must go out
            head = self._pending[0]
            deadline = head.arrived + self.window_s
            while not self._closed:
                same_key = sum(
                    1 for p in self._pending if p.key == head.key
                )
                remaining = deadline - time.monotonic()
                if remaining <= 0 or same_key >= self.max_batch:
                    break
                self._wake.wait(remaining)
            taken: List[_PendingRequest] = []
            kept: List[_PendingRequest] = []
            for request in self._pending:
                if request.key == head.key and len(taken) < self.max_batch:
                    taken.append(request)
                else:
                    kept.append(request)
            self._pending = kept
            if kept:
                self._wake.notify_all()
        return taken

    def _flush(self, batch: List[_PendingRequest]) -> None:
        # a caller may have given up (cancelled) while waiting in the
        # window; drop those before spending engine time on them
        live = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        if not live:
            return
        key = live[0].key
        queries = [request.query for request in live]
        self.metrics.inc("serve.batches")
        self.metrics.observe("serve.batch_size", len(live))
        if len(live) > 1:
            self.metrics.inc("serve.coalesced_requests", len(live))
        started = time.perf_counter()
        for request in live:
            request.dispatched = started
        with self._wake:
            self._inflight = len(live)
        trace_ctx = _TRACER.trace(
            "serve.batch",
            requests=len(live),
            metric=key.metric,
            threshold=key.threshold,
        )
        try:
            with trace_ctx:
                results = self._run_batch(queries, key)
            if len(results) != len(live):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{len(live)} queries"
                )
        # failure isolation: re-run each request alone so the raising
        # request gets its own exception and batchmates still succeed
        # repro: noqa RA07 -- every exception re-delivers via the rescue path
        except BaseException as error:
            self._rescue(live, key, error)
            return
        finally:
            with self._wake:
                self._inflight = 0
            self.metrics.record_time(
                "serve.batch.seconds", time.perf_counter() - started
            )
        batch_document = getattr(trace_ctx, "document", None)
        for request, result in zip(live, results):
            request.batch_document = batch_document
            request.future.set_result((result, len(live)))

    def _rescue(
        self, batch: List[_PendingRequest], key: BatchKey, error: BaseException
    ) -> None:
        if len(batch) == 1:
            batch[0].future.set_exception(error)
            return
        self.metrics.inc("serve.rescued_requests", len(batch))
        for request in batch:
            try:
                result = self._run_one(request.query, key)
            # repro: noqa RA07 -- the exception IS this request's answer
            except BaseException as single_error:
                request.future.set_exception(single_error)
            else:
                request.future.set_result((result, 1))
