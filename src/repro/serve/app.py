"""The ASGI application: HTTP in front of a similarity engine.

:class:`ServeApp` is a plain ASGI 3 callable — no framework, no
dependencies — so it runs under any ASGI server (uvicorn, hypercorn) and
under the bundled :mod:`repro.serve.server` when none is installed.

Routes
------

``POST /search``
    Body ``{"query": str, "threshold": num}`` (``"tau"`` is accepted as an
    alias).  The request is enqueued on the :class:`BatchCoalescer` and
    coalesced with concurrent compatible requests into one
    ``search_batch(kernel="auto")`` call; the response carries this
    request's own result — bit-identical to a direct ``engine.search``.
    ``"metric"`` optionally overrides the engine's set-similarity metric
    per request (jaccard/cosine/dice interchange on the same index;
    ``ed`` needs an ed-built index).  A body with ``"queries": [...]``
    is answered as one explicit batch, bypassing the coalescing window.

``GET /healthz``
    Liveness + integrity: re-runs the ``repro check`` structural bundle
    validator over the served bundle (cached for ``health_max_age_s``)
    and answers 200 with a summary, or 503 listing the violations.

``GET /metrics``
    Prometheus text exposition of the engine registry (when enabled) and
    the serve-layer registry: per-route counters, the coalesced-batch-size
    histogram, batch timings.

``GET /``
    An info document: engine shape, records, shards, coalescing knobs and
    the achieved coalescing stats.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..engine import ShardedEngine, SimilarityEngine
from ..obs import METRICS as _METRICS
from ..obs import TRACER as _TRACER
from ..obs.export import to_prometheus
from ..obs.registry import MetricsRegistry
from .coalescer import BatchCoalescer, BatchKey

__all__ = ["ServeApp", "create_app"]

#: set-similarity metrics answerable on one token index interchangeably.
#: ``ed`` is excluded on purpose: edit-distance search needs the q-gram
#: tokenization and count thresholds it was indexed for, so it is only
#: honoured when the engine itself was built with ``metric="ed"``.
_SET_METRICS = ("jaccard", "cosine", "dice")

_MAX_BODY_BYTES = 1 << 20


class _HttpError(Exception):
    """Maps straight to an error response (status + JSON message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServeApp:
    """ASGI 3 application serving one engine (see module docstring).

    Parameters
    ----------
    engine:
        The :class:`SimilarityEngine` / :class:`ShardedEngine` to serve.
    bundle_path:
        The bundle directory the engine was opened from, if any —
        ``/healthz`` runs the structural validator over it.
    window_ms / max_batch:
        Coalescing knobs (see :class:`BatchCoalescer`).
    batch_workers:
        ``workers`` for the coalesced ``search_batch`` calls (1 keeps the
        batch on the dispatcher thread; the batch kernels usually beat a
        pool for coalesced sizes).
    kernel:
        Per-call kernel override handed to ``search_batch`` (None inherits
        the engine's own setting).
    slow_ms:
        When set, enables the global tracer in always-sample-slow mode:
        coalesced batches slower than this land in ``TRACER.slow_log``.
    health_max_age_s:
        ``/healthz`` re-runs the bundle validator at most this often.
    """

    def __init__(
        self,
        engine,
        *,
        bundle_path=None,
        window_ms: float = 2.0,
        max_batch: int = 64,
        batch_workers: int = 1,
        kernel: Optional[str] = None,
        slow_ms: Optional[float] = None,
        health_max_age_s: float = 15.0,
    ) -> None:
        self.engine = engine
        self.bundle_path = bundle_path
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.batch_workers = batch_workers
        self.kernel = kernel
        self.health_max_age_s = health_max_age_s
        self.started_at = time.time()
        #: per-route request/status counters, always on
        self.metrics = MetricsRegistry(enabled=True)
        self.coalescer = BatchCoalescer(
            self._run_batch,
            self._run_one,
            window_s=window_ms / 1000.0,
            max_batch=max_batch,
        )
        # secondary searchers for per-request metric overrides, sharing
        # the primary engine's index (lazily built, at most one per metric)
        self._engines: Dict[str, SimilarityEngine] = {}
        self._engines_lock = threading.Lock()
        self._health: Optional[Tuple[float, List[str]]] = None
        self._health_lock = threading.Lock()
        if slow_ms is not None:
            _TRACER.configure(enabled=True, sample_rate=0.0, slow_ms=slow_ms)

    # ------------------------------------------------------------------ #
    # engine access (everything below runs on the dispatcher thread)
    # ------------------------------------------------------------------ #
    def _engine_for(self, metric: str):
        if metric == self.engine.metric:
            return self.engine
        if self.engine.metric == "ed" or metric not in _SET_METRICS:
            raise _HttpError(
                400,
                f"metric {metric!r} is not answerable on this index; the "
                f"engine serves {self.engine.metric!r}"
                + (
                    f" (per-request overrides: {', '.join(_SET_METRICS)})"
                    if self.engine.metric != "ed"
                    else " (edit-distance indexes answer only 'ed')"
                ),
            )
        if not isinstance(self.engine, SimilarityEngine):
            raise _HttpError(
                400,
                f"per-request metric overrides need a single-index engine; "
                f"this sharded engine serves {self.engine.metric!r} only",
            )
        with self._engines_lock:
            engine = self._engines.get(metric)
            if engine is None:
                engine = SimilarityEngine(
                    index=self.engine.index,
                    metric=metric,
                    algorithm=self.engine.algorithm,
                    kernel=self.engine.kernel,
                )
                self._engines[metric] = engine
        return engine

    def _run_batch(self, queries: List[str], key: BatchKey):
        engine = self._engine_for(key.metric)
        return engine.search_batch(
            queries,
            key.threshold,
            workers=self.batch_workers,
            kernel=self.kernel,
        )

    def _run_one(self, query: str, key: BatchKey):
        return self._engine_for(key.metric).search(query, key.threshold)

    # ------------------------------------------------------------------ #
    # ASGI entry point
    # ------------------------------------------------------------------ #
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        method = scope["method"]
        path = scope["path"]
        try:
            if path == "/search" and method == "POST":
                status, document = await self._search(scope, receive)
            elif path == "/healthz" and method == "GET":
                status, document = await self._healthz()
            elif path == "/metrics" and method == "GET":
                self._count_route("metrics", 200)
                await _send_text(send, 200, self._render_metrics())
                return
            elif path == "/" and method == "GET":
                status, document = 200, self._info()
            elif path in ("/search", "/healthz", "/metrics", "/"):
                raise _HttpError(405, f"{method} not allowed on {path}")
            else:
                raise _HttpError(404, f"no route for {path}")
        except _HttpError as error:
            status, document = error.status, {"error": error.message}
        except ValueError as error:
            # engine-side input validation (out-of-range threshold, bad
            # query shape) is the client's fault, not a server failure
            status, document = 400, {"error": str(error)}
        # the serving loop must answer 500, not die; the error text is
        # returned to the caller and counted per route
        # repro: noqa RA07 -- every handler failure becomes a 500 response
        except Exception as error:
            status = 500
            document = {"error": f"{type(error).__name__}: {error}"}
        self._count_route(path.strip("/") or "info", status)
        await _send_json(send, status, document)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                self.coalescer.start()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.coalescer.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    def close(self) -> None:
        """Shut the coalescer (and any secondary engines) down."""
        self.coalescer.close()
        for engine in self._engines.values():
            engine.close()

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _search(self, scope, receive) -> Tuple[int, Dict]:
        document = await _read_json(receive)
        threshold = document.get("threshold", document.get("tau"))
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise _HttpError(
                400, "body must carry a numeric 'threshold' (alias 'tau')"
            )
        metric = document.get("metric", self.engine.metric)
        if not isinstance(metric, str):
            raise _HttpError(400, "'metric' must be a string")
        key = BatchKey(metric=metric, threshold=threshold)

        if "queries" in document:
            queries = document["queries"]
            if not isinstance(queries, list) or not all(
                isinstance(query, str) for query in queries
            ):
                raise _HttpError(400, "'queries' must be a list of strings")
            results = await asyncio.to_thread(self._run_batch, queries, key)
            return 200, {
                "threshold": threshold,
                "metric": metric,
                "results": [
                    {"query": query, "count": len(result), "ids": list(result)}
                    for query, result in zip(queries, results)
                ],
            }

        query = document.get("query")
        if not isinstance(query, str):
            raise _HttpError(
                400, "body must carry a 'query' string (or a 'queries' list)"
            )
        future = self.coalescer.submit(query, key)
        result, batch_size = await asyncio.wrap_future(future)
        return 200, {
            "query": query,
            "threshold": threshold,
            "metric": metric,
            "count": len(result),
            "ids": list(result),
            "seconds": result.seconds,
            "batch_size": batch_size,
        }

    async def _healthz(self) -> Tuple[int, Dict]:
        issues = await asyncio.to_thread(self._check_health)
        document = {
            "status": "ok" if not issues else "unhealthy",
            "records": _num_records(self.engine),
            "bundle": str(self.bundle_path) if self.bundle_path else None,
            "issues": issues[:20],
        }
        return (200 if not issues else 503), document

    def _check_health(self) -> List[str]:
        """The ``repro check`` structural validator, cached briefly."""
        if self.bundle_path is None:
            return []
        with self._health_lock:
            now = time.monotonic()
            if (
                self._health is not None
                and now - self._health[0] < self.health_max_age_s
            ):
                return self._health[1]
            from ..compression.validate import check_path

            try:
                issues = check_path(self.bundle_path)
            # repro: noqa RA07 -- a validator crash IS the health finding
            except Exception as error:
                issues = [f"health check failed ({type(error).__name__}): {error}"]
            self._health = (now, issues)
            return issues

    def _render_metrics(self) -> str:
        parts = [
            to_prometheus(self.metrics, prefix="repro"),
            to_prometheus(self.coalescer.metrics, prefix="repro"),
        ]
        if _METRICS.enabled:
            parts.append(to_prometheus(_METRICS, prefix="repro"))
        return "".join(part for part in parts if part)

    def _info(self) -> Dict:
        engine = self.engine
        return {
            "service": "repro.serve",
            "engine": type(engine).__name__,
            "metric": engine.metric,
            "algorithm": engine.algorithm,
            "kernel": self.kernel or engine.kernel,
            "shards": getattr(engine, "num_shards", 1),
            "records": _num_records(engine),
            "bundle": str(self.bundle_path) if self.bundle_path else None,
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "uptime_s": round(time.time() - self.started_at, 3),
            "coalescing": self.coalescer.stats(),
        }

    def _count_route(self, route: str, status: int) -> None:
        self.metrics.inc(f"serve.route.{route}.requests")
        self.metrics.inc(f"serve.route.{route}.status_{status}")


def _num_records(engine) -> int:
    if hasattr(engine, "num_records"):  # ShardedEngine
        return int(engine.num_records)
    return len(engine.index.collection)


async def _read_json(receive) -> Dict:
    chunks = []
    total = 0
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise _HttpError(400, "client disconnected mid-request")
        chunks.append(message.get("body", b""))
        total += len(chunks[-1])
        if total > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body over 1 MiB")
        if not message.get("more_body"):
            break
    body = b"".join(chunks)
    if not body:
        raise _HttpError(400, "request body must be a JSON object")
    try:
        document = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _HttpError(400, f"request body is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return document


async def _send_json(send, status: int, document: Dict) -> None:
    body = json.dumps(document, sort_keys=True, default=float).encode()
    await _send_bytes(send, status, body, b"application/json")


async def _send_text(send, status: int, text: str) -> None:
    await _send_bytes(
        send, status, text.encode(), b"text/plain; version=0.0.4"
    )


async def _send_bytes(send, status: int, body: bytes, ctype: bytes) -> None:
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", ctype),
                (b"content-length", str(len(body)).encode()),
            ],
        }
    )
    await send({"type": "http.response.body", "body": body})


def create_app(
    path,
    *,
    mmap: bool = True,
    algorithm: str = "mergeskip",
    metric: str = "jaccard",
    **app_kwargs,
) -> ServeApp:
    """Open the bundle at ``path`` and wrap it in a :class:`ServeApp`.

    This is the uvicorn-friendly factory::

        uvicorn --factory 'repro.serve:create_app(path="corpus.bundle")'

    ``path`` must be a bundle directory saved with
    :meth:`SimilarityEngine.save` / :meth:`ShardedEngine.save` /
    ``repro index`` (the CLI's ``repro serve`` also accepts raw corpora
    and builds the index on the fly — that logic lives in the CLI).
    """
    from ..storage.bundle import BUNDLE_KIND
    from ..storage.legacy import read_manifest
    from ..storage.sharded import SHARDED_BUNDLE_KIND

    kind = (read_manifest(path) or {}).get("kind")
    if kind == BUNDLE_KIND:
        engine = SimilarityEngine.open(
            path, mmap=mmap, algorithm=algorithm, metric=metric
        )
    elif kind == SHARDED_BUNDLE_KIND:
        engine = ShardedEngine.open(
            path, mmap=mmap, algorithm=algorithm, metric=metric
        )
    else:
        raise ValueError(
            f"{path} is not an index bundle (manifest kind {kind!r}); "
            "save one with SimilarityEngine.save / ShardedEngine.save or "
            "`repro index CORPUS OUT`"
        )
    return ServeApp(engine, bundle_path=path, **app_kwargs)
