"""The ASGI application: HTTP in front of a similarity engine.

:class:`ServeApp` is a plain ASGI 3 callable — no framework, no
dependencies — so it runs under any ASGI server (uvicorn, hypercorn) and
under the bundled :mod:`repro.serve.server` when none is installed.

Routes
------

``POST /search``
    Body ``{"query": str, "threshold": num}`` (``"tau"`` is accepted as an
    alias).  The request is enqueued on the :class:`BatchCoalescer` and
    coalesced with concurrent compatible requests into one
    ``search_batch(kernel="auto")`` call; the response carries this
    request's own result — bit-identical to a direct ``engine.search``.
    ``"metric"`` optionally overrides the engine's set-similarity metric
    per request (jaccard/cosine/dice interchange on the same index;
    ``ed`` needs an ed-built index).  A body with ``"queries": [...]``
    is answered as one explicit batch, bypassing the coalescing window.

``GET /healthz``
    Liveness + integrity: re-runs the ``repro check`` structural bundle
    validator over the served bundle (cached for ``health_max_age_s``)
    and answers 200 with a summary, or 503 listing the violations.

``GET /metrics``
    Prometheus text exposition of the engine registry (when enabled) and
    the serve-layer registry: per-route counters, the coalesced-batch-size
    histogram, batch timings.

``GET /``
    An info document: engine shape, records, shards, coalescing knobs and
    the achieved coalescing stats.

``GET /debug/vars``
    A JSON snapshot of every live gauge, counter and coalescing stat —
    the machine-readable face of ``/metrics`` for quick ``curl | jq``
    introspection.

``GET /debug/trace?n=K``
    The newest ``K`` retained trace documents as JSONL (without draining
    the buffer).  A coalesced request's document is a full tree: its own
    queue wait, the shared batch execution subtree, and the demux tail.

Every ``POST /search`` response carries a W3C ``traceparent`` header; an
incoming ``traceparent`` is honoured, so the request's trace document
joins the caller's distributed trace id.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import re
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__
from ..engine import ShardedEngine, SimilarityEngine
from ..obs import METRICS as _METRICS
from ..obs import TRACER as _TRACER
from ..obs.export import to_prometheus, traces_to_jsonl
from ..obs.registry import MetricsRegistry
from .coalescer import BatchCoalescer, BatchKey

__all__ = ["ServeApp", "create_app"]

#: set-similarity metrics answerable on one token index interchangeably.
#: ``ed`` is excluded on purpose: edit-distance search needs the q-gram
#: tokenization and count thresholds it was indexed for, so it is only
#: honoured when the engine itself was built with ``metric="ed"``.
_SET_METRICS = ("jaccard", "cosine", "dice")

_MAX_BODY_BYTES = 1 << 20

#: W3C trace-context: version "00", 32-hex trace id, 16-hex parent span id
_TRACEPARENT = re.compile(
    r"^00-(?P<trace>[0-9a-f]{32})-(?P<parent>[0-9a-f]{16})-[0-9a-f]{2}$"
)


class _HttpError(Exception):
    """Maps straight to an error response (status + JSON message)."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Sequence[Tuple[bytes, bytes]] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = tuple(headers)


class ServeApp:
    """ASGI 3 application serving one engine (see module docstring).

    Parameters
    ----------
    engine:
        The :class:`SimilarityEngine` / :class:`ShardedEngine` to serve.
    bundle_path:
        The bundle directory the engine was opened from, if any —
        ``/healthz`` runs the structural validator over it.
    window_ms / max_batch:
        Coalescing knobs (see :class:`BatchCoalescer`).
    batch_workers:
        ``workers`` for the coalesced ``search_batch`` calls (1 keeps the
        batch on the dispatcher thread; the batch kernels usually beat a
        pool for coalesced sizes).
    kernel:
        Per-call kernel override handed to ``search_batch`` (None inherits
        the engine's own setting).
    slow_ms:
        When set, enables the global tracer with always-sample-slow:
        requests/batches slower than this land in ``TRACER.slow_log``
        (sampled at ``trace_sample`` when that is also set, else
        slow-only).
    trace_sample:
        When set, enables the global tracer at this sample rate so
        ``GET /debug/trace`` has request trees to show (``1.0`` keeps
        every request's trace in the bounded buffer).  ``repro serve``
        passes ``1.0`` by default; ``None`` leaves the tracer alone.
    max_pending:
        Admission control: when the coalescer's pending queue holds at
        least this many requests, new ``POST /search`` requests are shed
        with ``429 Too Many Requests`` + ``Retry-After`` (counted as
        ``serve.shed``).  ``None`` (default) never sheds.
    health_max_age_s:
        ``/healthz`` re-runs the bundle validator at most this often.
    """

    def __init__(
        self,
        engine,
        *,
        bundle_path=None,
        window_ms: float = 2.0,
        max_batch: int = 64,
        batch_workers: int = 1,
        kernel: Optional[str] = None,
        slow_ms: Optional[float] = None,
        trace_sample: Optional[float] = None,
        max_pending: Optional[int] = None,
        health_max_age_s: float = 15.0,
    ) -> None:
        self.engine = engine
        self.bundle_path = bundle_path
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.batch_workers = batch_workers
        self.kernel = kernel
        self.max_pending = max_pending
        self.health_max_age_s = health_max_age_s
        self.started_at = time.time()
        #: per-route request/status counters, always on
        self.metrics = MetricsRegistry(enabled=True)
        self.coalescer = BatchCoalescer(
            self._run_batch,
            self._run_one,
            window_s=window_ms / 1000.0,
            max_batch=max_batch,
        )
        # secondary searchers for per-request metric overrides, sharing
        # the primary engine's index (lazily built, at most one per metric)
        self._engines: Dict[str, SimilarityEngine] = {}
        self._engines_lock = threading.Lock()
        self._health: Optional[Tuple[float, List[str]]] = None
        self._health_lock = threading.Lock()
        if slow_ms is not None or trace_sample is not None:
            _TRACER.configure(
                enabled=True,
                sample_rate=(
                    trace_sample if trace_sample is not None else 0.0
                ),
                slow_ms=slow_ms,
            )
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Live runtime gauges, resolved at scrape time (``/metrics``,
        ``/debug/vars``); callbacks survive ``reset()``."""
        # registrations are spelled out (no local alias for the bound
        # method) so the RA13 telemetry-manifest rule sees each name
        self.metrics.register_gauge(
            "serve.uptime_seconds", lambda: time.time() - self.started_at
        )
        self.metrics.register_gauge("process.rss_bytes", _rss_bytes)
        self.metrics.register_gauge(
            "engine.cache.entries",
            lambda: self.engine.cache_stats()["entries"],
        )
        self.metrics.register_gauge(
            "engine.cache.bytes",
            lambda: self.engine.cache_stats()["bytes"],
        )
        self.metrics.register_gauge(
            "engine.pool.workers",
            lambda: getattr(self.engine, "pool_workers", 0),
        )

    # ------------------------------------------------------------------ #
    # engine access (everything below runs on the dispatcher thread)
    # ------------------------------------------------------------------ #
    def _engine_for(self, metric: str):
        if metric == self.engine.metric:
            return self.engine
        if self.engine.metric == "ed" or metric not in _SET_METRICS:
            raise _HttpError(
                400,
                f"metric {metric!r} is not answerable on this index; the "
                f"engine serves {self.engine.metric!r}"
                + (
                    f" (per-request overrides: {', '.join(_SET_METRICS)})"
                    if self.engine.metric != "ed"
                    else " (edit-distance indexes answer only 'ed')"
                ),
            )
        if not isinstance(self.engine, SimilarityEngine):
            raise _HttpError(
                400,
                f"per-request metric overrides need a single-index engine; "
                f"this sharded engine serves {self.engine.metric!r} only",
            )
        with self._engines_lock:
            engine = self._engines.get(metric)
            if engine is None:
                engine = SimilarityEngine(
                    index=self.engine.index,
                    metric=metric,
                    algorithm=self.engine.algorithm,
                    kernel=self.engine.kernel,
                )
                self._engines[metric] = engine
        return engine

    def _run_batch(self, queries: List[str], key: BatchKey):
        engine = self._engine_for(key.metric)
        # child span under the coalescer's "serve.batch" trace (or a root
        # trace of its own on the explicit-batch path) — either way the
        # engine call runs inside an active trace, which keeps the batch
        # kernels engaged (see CountFilterSearcher.search_many_batched)
        with _TRACER.trace(
            "serve.execute",
            queries=len(queries),
            metric=key.metric,
            threshold=key.threshold,
        ):
            return engine.search_batch(
                queries,
                key.threshold,
                workers=self.batch_workers,
                kernel=self.kernel,
            )

    def _run_one(self, query: str, key: BatchKey):
        return self._engine_for(key.metric).search(query, key.threshold)

    # ------------------------------------------------------------------ #
    # ASGI entry point
    # ------------------------------------------------------------------ #
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        method = scope["method"]
        path = scope["path"]
        started = time.perf_counter()
        route = path.strip("/").replace("/", "_") or "info"
        extra_headers: List[Tuple[bytes, bytes]] = []
        try:
            if path == "/search" and method == "POST":
                status, document = await self._search(
                    scope, receive, extra_headers
                )
            elif path == "/healthz" and method == "GET":
                status, document = await self._healthz()
            elif path == "/metrics" and method == "GET":
                self._count_route(
                    "metrics", 200, time.perf_counter() - started
                )
                await _send_text(send, 200, self._render_metrics())
                return
            elif path == "/debug/vars" and method == "GET":
                status, document = 200, self._debug_vars()
            elif path == "/debug/trace" and method == "GET":
                self._count_route(
                    "debug_trace", 200, time.perf_counter() - started
                )
                await _send_text(
                    send,
                    200,
                    self._debug_trace(scope),
                    ctype=b"application/x-ndjson",
                )
                return
            elif path == "/" and method == "GET":
                status, document = 200, self._info()
            elif path in (
                "/search",
                "/healthz",
                "/metrics",
                "/debug/vars",
                "/debug/trace",
                "/",
            ):
                raise _HttpError(405, f"{method} not allowed on {path}")
            else:
                raise _HttpError(404, f"no route for {path}")
        except _HttpError as error:
            status, document = error.status, {"error": error.message}
            extra_headers.extend(error.headers)
        except ValueError as error:
            # engine-side input validation (out-of-range threshold, bad
            # query shape) is the client's fault, not a server failure
            status, document = 400, {"error": str(error)}
        # the serving loop must answer 500, not die; the error text is
        # returned to the caller and counted per route
        # repro: noqa RA07 -- every handler failure becomes a 500 response
        except Exception as error:
            status = 500
            document = {"error": f"{type(error).__name__}: {error}"}
        self._count_route(route, status, time.perf_counter() - started)
        await _send_json(send, status, document, extra_headers)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                self.coalescer.start()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.coalescer.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    def close(self) -> None:
        """Shut the coalescer (and any secondary engines) down."""
        self.coalescer.close()
        with self._engines_lock:
            engines = list(self._engines.values())
        for engine in engines:
            engine.close()

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _search(
        self, scope, receive, extra_headers: List[Tuple[bytes, bytes]]
    ) -> Tuple[int, Dict]:
        document = await _read_json(receive)
        threshold = document.get("threshold", document.get("tau"))
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise _HttpError(
                400, "body must carry a numeric 'threshold' (alias 'tau')"
            )
        metric = document.get("metric", self.engine.metric)
        if not isinstance(metric, str):
            raise _HttpError(400, "'metric' must be a string")
        key = BatchKey(metric=metric, threshold=threshold)

        if "queries" in document:
            queries = document["queries"]
            if not isinstance(queries, list) or not all(
                isinstance(query, str) for query in queries
            ):
                raise _HttpError(400, "'queries' must be a list of strings")
            results = await asyncio.to_thread(self._run_batch, queries, key)
            return 200, {
                "threshold": threshold,
                "metric": metric,
                "results": [
                    {"query": query, "count": len(result), "ids": list(result)}
                    for query, result in zip(queries, results)
                ],
            }

        query = document.get("query")
        if not isinstance(query, str):
            raise _HttpError(
                400, "body must carry a 'query' string (or a 'queries' list)"
            )
        if (
            self.max_pending is not None
            and self.coalescer.pending_count() >= self.max_pending
        ):
            # shed instead of queueing without bound; Retry-After covers
            # at least one coalescing window so the retry can drain
            self.metrics.inc("serve.shed")
            retry_s = max(1, int(self.window_ms / 1000.0) + 1)
            raise _HttpError(
                429,
                f"pending queue at max_pending={self.max_pending}; "
                "retry shortly",
                headers=((b"retry-after", str(retry_s).encode()),),
            )
        trace_id, parent_span = _parse_traceparent(scope.get("headers"))
        received = time.perf_counter()
        request = self.coalescer.submit_request(query, key)
        result, batch_size = await asyncio.wrap_future(request.future)
        finished = time.perf_counter()
        if trace_id is None:
            trace_id = uuid.uuid4().hex
        trace_document = _request_trace_document(
            trace_id,
            parent_span,
            request,
            batch_size,
            received,
            finished,
        )
        _TRACER.offer(trace_document)
        extra_headers.append(
            (
                b"traceparent",
                f"00-{trace_id}-{uuid.uuid4().hex[:16]}-01".encode(),
            )
        )
        return 200, {
            "query": query,
            "threshold": threshold,
            "metric": metric,
            "count": len(result),
            "ids": list(result),
            "seconds": result.seconds,
            "batch_size": batch_size,
            "trace_id": trace_id,
        }

    async def _healthz(self) -> Tuple[int, Dict]:
        issues = await asyncio.to_thread(self._check_health)
        document = {
            "status": "ok" if not issues else "unhealthy",
            "records": _num_records(self.engine),
            "bundle": str(self.bundle_path) if self.bundle_path else None,
            "issues": issues[:20],
        }
        return (200 if not issues else 503), document

    def _check_health(self) -> List[str]:
        """The ``repro check`` structural validator, cached briefly."""
        if self.bundle_path is None:
            return []
        with self._health_lock:
            now = time.monotonic()
            if (
                self._health is not None
                and now - self._health[0] < self.health_max_age_s
            ):
                return self._health[1]
            from ..compression.validate import check_path

            try:
                issues = check_path(self.bundle_path)
            # repro: noqa RA07 -- a validator crash IS the health finding
            except Exception as error:
                issues = [f"health check failed ({type(error).__name__}): {error}"]
            self._health = (now, issues)
            return issues

    def _render_metrics(self) -> str:
        parts = [
            _build_info_exposition(),
            to_prometheus(self.metrics, prefix="repro"),
            to_prometheus(self.coalescer.metrics, prefix="repro"),
        ]
        if _METRICS.enabled:
            parts.append(to_prometheus(_METRICS, prefix="repro"))
        return "".join(part for part in parts if part)

    def _debug_vars(self) -> Dict:
        """A JSON snapshot of the live runtime state (`GET /debug/vars`)."""
        serve = self.metrics.snapshot(full=True) or {}
        coalescer = self.coalescer.metrics.snapshot(full=True) or {}
        return {
            "service": "repro.serve",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "engine": type(self.engine).__name__,
            "max_pending": self.max_pending,
            "shed": self.metrics.counter("serve.shed"),
            "gauges": {
                **coalescer.get("gauges", {}),
                **serve.get("gauges", {}),
            },
            "serve": serve,
            "coalescing": self.coalescer.stats(),
            "cache": self.engine.cache_stats(),
            "engine_metrics": (
                _METRICS.snapshot(full=True) if _METRICS.enabled else None
            ),
            "traces": {
                "enabled": _TRACER.enabled,
                "buffered": len(_TRACER.buffer),
                "slow_log": len(_TRACER.slow_log),
                "dropped": _TRACER.dropped,
            },
        }

    def _debug_trace(self, scope) -> str:
        """`GET /debug/trace?n=K` — newest K trace trees as JSONL."""
        n = 16
        query_string = scope.get("query_string") or b""
        for pair in query_string.decode("latin-1").split("&"):
            name, separator, value = pair.partition("=")
            if name == "n" and separator:
                try:
                    n = int(value)
                except ValueError:
                    raise _HttpError(400, f"n must be an integer, got {value!r}")
        if n < 0:
            raise _HttpError(400, f"n must be >= 0, got {n}")
        return traces_to_jsonl(_TRACER.recent(n))

    def _info(self) -> Dict:
        engine = self.engine
        return {
            "service": "repro.serve",
            "engine": type(engine).__name__,
            "metric": engine.metric,
            "algorithm": engine.algorithm,
            "kernel": self.kernel or engine.kernel,
            "shards": getattr(engine, "num_shards", 1),
            "records": _num_records(engine),
            "bundle": str(self.bundle_path) if self.bundle_path else None,
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "uptime_s": round(time.time() - self.started_at, 3),
            "coalescing": self.coalescer.stats(),
        }

    def _count_route(
        self, route: str, status: int, seconds: Optional[float] = None
    ) -> None:
        self.metrics.inc(f"serve.route.{route}.requests")
        self.metrics.inc(f"serve.route.{route}.status_{status}")
        if seconds is not None:
            # log2-bucketed latency histogram: `repro top` derives rolling
            # p50/p99 per route from the cumulative bucket counts
            self.metrics.observe(
                f"serve.route.{route}.latency_ms", 1000.0 * seconds
            )


def _num_records(engine) -> int:
    if hasattr(engine, "num_records"):  # ShardedEngine
        return int(engine.num_records)
    return len(engine.index.collection)


def _rss_bytes() -> float:
    """Resident set size of this process (0.0 when unreadable)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = float(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        try:
            import resource
        except ImportError:
            return 0.0
        # ru_maxrss is KiB on linux (high-water, not current — good enough
        # for the fallback path)
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0


def _build_info_exposition() -> str:
    """The conventional ``*_build_info`` gauge: labels carry the metadata,
    the value is always 1."""
    return (
        "# HELP repro_build_info repro build metadata (value is always 1)\n"
        "# TYPE repro_build_info gauge\n"
        f'repro_build_info{{version="{__version__}",'
        f'python="{platform.python_version()}"}} 1\n'
    )


def _parse_traceparent(
    headers: Optional[Iterable[Tuple[bytes, bytes]]],
) -> Tuple[Optional[str], Optional[str]]:
    """W3C ``traceparent`` from the request headers: (trace_id, span_id).

    ``(None, None)`` when absent or malformed — a bad header joins no
    distributed trace but must never fail the request.
    """
    for name, value in headers or ():
        if bytes(name).lower() != b"traceparent":
            continue
        match = _TRACEPARENT.match(
            bytes(value).decode("latin-1").strip().lower()
        )
        if match and match.group("trace") != "0" * 32:
            return match.group("trace"), match.group("parent")
    return None, None


def _request_trace_document(
    trace_id: str,
    parent_span: Optional[str],
    request,
    batch_size: int,
    received: float,
    finished: float,
) -> Dict:
    """One request's full trace tree, synthesized after its future resolved.

    An asyncio handler cannot host a thread-local tracer trace (request
    coroutines interleave on one event-loop thread), so the tree is built
    from the coalescer ticket's timestamps instead: a ``serve.request``
    root, a ``serve.queue`` child covering the coalescing-window wait, the
    shared batch's span tree grafted in (id-renumbered, time-rebased onto
    this request's origin), and a ``serve.demux`` tail.
    """
    duration = max(0.0, finished - received)
    dispatched = (
        request.dispatched if request.dispatched is not None else finished
    )
    spans: List[Dict] = [
        {
            "id": 1,
            "parent": None,
            "name": "serve.request",
            "start_ms": 0.0,
            "ms": 1000.0 * duration,
        },
        {
            "id": 2,
            "parent": 1,
            "name": "serve.queue",
            "start_ms": max(0.0, 1000.0 * (request.arrived_perf - received)),
            "ms": max(0.0, 1000.0 * (dispatched - request.arrived_perf)),
        },
    ]
    next_id, batch_end = 3, dispatched
    if request.batch_document is not None:
        next_id, batch_end = _graft_spans(
            spans, next_id, 1, request.batch_document, received
        )
    spans.append(
        {
            "id": next_id,
            "parent": 1,
            "name": "serve.demux",
            "start_ms": max(0.0, 1000.0 * (batch_end - received)),
            "ms": max(0.0, 1000.0 * (finished - batch_end)),
        }
    )
    meta: Dict = {
        "query": request.query,
        "metric": request.key.metric,
        "threshold": request.key.threshold,
        "batch_size": batch_size,
    }
    if parent_span is not None:
        meta["parent_span"] = parent_span
    return {
        "trace_id": trace_id,
        "name": "serve.request",
        "meta": meta,
        "started_s": received,
        "seconds": duration,
        "spans": spans,
    }


def _graft_spans(
    spans: List[Dict],
    next_id: int,
    root_id: int,
    batch_document: Dict,
    origin: float,
) -> Tuple[int, float]:
    """Embed a finished trace document's span tree under ``root_id``.

    Span ids are renumbered past ``next_id`` and start times rebased from
    the batch trace's own origin onto ``origin`` (both are perf_counter
    readings, so the offset is exact).  Returns the next free span id and
    the batch's absolute end time.
    """
    batch_started = float(batch_document.get("started_s", origin))
    offset_ms = 1000.0 * (batch_started - origin)
    mapping: Dict[int, int] = {}
    for span in batch_document.get("spans", ()):
        new_id = next_id
        next_id += 1
        mapping[span["id"]] = new_id
        spans.append(
            {
                "id": new_id,
                "parent": mapping.get(span.get("parent"), root_id),
                "name": span["name"],
                "start_ms": float(span.get("start_ms", 0.0)) + offset_ms,
                "ms": float(span.get("ms", 0.0)),
            }
        )
    batch_end = batch_started + float(batch_document.get("seconds", 0.0))
    return next_id, batch_end


async def _read_json(receive) -> Dict:
    chunks = []
    total = 0
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise _HttpError(400, "client disconnected mid-request")
        chunks.append(message.get("body", b""))
        total += len(chunks[-1])
        if total > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body over 1 MiB")
        if not message.get("more_body"):
            break
    body = b"".join(chunks)
    if not body:
        raise _HttpError(400, "request body must be a JSON object")
    try:
        document = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _HttpError(400, f"request body is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return document


async def _send_json(
    send,
    status: int,
    document: Dict,
    extra_headers: Sequence[Tuple[bytes, bytes]] = (),
) -> None:
    body = json.dumps(document, sort_keys=True, default=float).encode()
    await _send_bytes(send, status, body, b"application/json", extra_headers)


async def _send_text(
    send, status: int, text: str, ctype: bytes = b"text/plain; version=0.0.4"
) -> None:
    await _send_bytes(send, status, text.encode(), ctype)


async def _send_bytes(
    send,
    status: int,
    body: bytes,
    ctype: bytes,
    extra_headers: Sequence[Tuple[bytes, bytes]] = (),
) -> None:
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", ctype),
                (b"content-length", str(len(body)).encode()),
                *extra_headers,
            ],
        }
    )
    await send({"type": "http.response.body", "body": body})


def create_app(
    path,
    *,
    mmap: bool = True,
    algorithm: str = "mergeskip",
    metric: str = "jaccard",
    **app_kwargs,
) -> ServeApp:
    """Open the bundle at ``path`` and wrap it in a :class:`ServeApp`.

    This is the uvicorn-friendly factory::

        uvicorn --factory 'repro.serve:create_app(path="corpus.bundle")'

    ``path`` must be a bundle directory saved with
    :meth:`SimilarityEngine.save` / :meth:`ShardedEngine.save` /
    ``repro index`` (the CLI's ``repro serve`` also accepts raw corpora
    and builds the index on the fly — that logic lives in the CLI).
    """
    from ..storage.bundle import BUNDLE_KIND
    from ..storage.legacy import read_manifest
    from ..storage.sharded import SHARDED_BUNDLE_KIND

    kind = (read_manifest(path) or {}).get("kind")
    if kind == BUNDLE_KIND:
        engine = SimilarityEngine.open(
            path, mmap=mmap, algorithm=algorithm, metric=metric
        )
    elif kind == SHARDED_BUNDLE_KIND:
        engine = ShardedEngine.open(
            path, mmap=mmap, algorithm=algorithm, metric=metric
        )
    else:
        raise ValueError(
            f"{path} is not an index bundle (manifest kind {kind!r}); "
            "save one with SimilarityEngine.save / ShardedEngine.save or "
            "`repro index CORPUS OUT`"
        )
    return ServeApp(engine, bundle_path=path, **app_kwargs)
