"""Brute-force search oracles used by tests and candidate-quality checks."""

from __future__ import annotations

from typing import List

from ..similarity.edit_distance import within_edit_distance
from ..similarity.measures import cosine, dice, jaccard
from ..similarity.tokenize import TokenizedCollection

__all__ = ["brute_similarity_search", "brute_edit_distance_search"]

_METRIC_FUNCTIONS = {"jaccard": jaccard, "cosine": cosine, "dice": dice}


def brute_similarity_search(
    collection: TokenizedCollection,
    query: str,
    threshold: float,
    metric: str = "jaccard",
) -> List[int]:
    """Exhaustive Definition 1 evaluation (no filtering, no index)."""
    measure = _METRIC_FUNCTIONS[metric]
    query_tokens = collection.tokenize(query)
    query_ids = collection.dictionary.encode(query_tokens)
    unknown = len(query_tokens) - query_ids.size
    results = []
    for record_id, record in enumerate(collection.records):
        shared = measure(query_ids, record)
        if unknown:
            # recompute with the true signature size including unseen tokens
            from ..similarity.measures import overlap

            common = overlap(query_ids, record)
            total_query = len(query_tokens)
            if metric == "jaccard":
                union = total_query + record.size - common
                shared = common / union if union else 1.0
            elif metric == "cosine":
                shared = (
                    common / (total_query * record.size) ** 0.5
                    if total_query and record.size
                    else 0.0
                )
            else:
                shared = (
                    2 * common / (total_query + record.size)
                    if total_query + record.size
                    else 1.0
                )
        if shared >= threshold - 1e-12:
            results.append(record_id)
    return results


def brute_edit_distance_search(
    collection: TokenizedCollection, query: str, delta: int
) -> List[int]:
    """Exhaustive edit-distance search."""
    return [
        record_id
        for record_id, text in enumerate(collection.strings)
        if within_edit_distance(query, text, delta)
    ]
