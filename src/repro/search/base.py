"""Shared scaffolding for the count-filter searchers.

:class:`JaccardSearcher`, :class:`EditDistanceSearcher` and
:class:`GroupedJaccardSearcher` used to each carry their own copy of the
algorithm-name validation, the random-access guard (PForDelta cannot run
MergeSkip, per Figure 7.2), the T-occurrence dispatch, and the post-query
stats bookkeeping.  This module is the single home for all of it, plus the
two pieces the batched engine adds to every searcher:

* an optional shared :class:`~repro.engine.cache.DecodeCache` — when set,
  probed posting lists are wrapped so hot lists are served from their
  cached decoded form instead of being re-decoded per query;
* the :class:`~repro.search.result.SearchResult` plumbing — ``search()``
  returns a frozen result and ``last_stats`` survives only as a deprecated
  property.
"""

from __future__ import annotations

import time
import warnings
from typing import List, Sequence

from ..obs import METRICS as _METRICS
from ..obs import TRACER as _TRACER
from .result import SearchResult, SearchStats
from .toccurrence import ALGORITHMS, run_algorithm

__all__ = ["CountFilterSearcher"]


class CountFilterSearcher:
    """Base for searchers that answer queries via the count filter.

    ``allowed_algorithms`` lets subclasses restrict the menu (the grouped
    searcher does not implement DivideSkip).
    """

    def __init__(
        self,
        index,
        algorithm: str,
        cache=None,
        allowed_algorithms: Sequence[str] = tuple(ALGORITHMS),
    ) -> None:
        if algorithm not in allowed_algorithms:
            raise ValueError(
                f"algorithm must be one of {tuple(allowed_algorithms)}, "
                f"got {algorithm!r}"
            )
        if algorithm != "scancount" and not index.supports_random_access:
            raise ValueError(
                f"scheme {index.scheme!r} supports only sequential decoding; "
                "use algorithm='scancount' (cf. Figure 7.2: PForDelta cannot "
                "run MergeSkip)"
            )
        self.index = index
        self.algorithm = algorithm
        self.cache = cache
        self._last_stats = SearchStats()

    # ------------------------------------------------------------------ #
    # deprecated mutable-stats surface
    # ------------------------------------------------------------------ #
    @property
    def last_stats(self) -> SearchStats:
        """Stats of the most recent query (deprecated).

        Use the :class:`SearchResult` returned by :meth:`search` instead:
        under the concurrent batch path "the last query" is not a
        well-defined notion.
        """
        warnings.warn(
            "searcher.last_stats is deprecated; use the stats attribute of "
            "the SearchResult returned by search()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_stats

    # ------------------------------------------------------------------ #
    # shared query machinery
    # ------------------------------------------------------------------ #
    def _probe_lists(self, tokens: Sequence[int]) -> List:
        """Posting lists for ``tokens``, cache-wrapped when a cache is set."""
        lists = self.index.posting_lists(tokens)
        cache = self.cache
        if cache is not None:
            lists = [cache.wrap(lst) for lst in lists]
        return lists

    def _candidates(self, lists, threshold: int):
        return run_algorithm(
            self.algorithm, lists, threshold, len(self.index.collection)
        )

    def _finish(
        self,
        query: str,
        threshold: float,
        stats: SearchStats,
        ids: List[int],
        started: float,
    ) -> SearchResult:
        """Freeze one query's outcome and record the per-query counters."""
        stats.results = len(ids)
        self._last_stats = stats
        if _METRICS.enabled:
            _METRICS.inc("search.queries")
            _METRICS.inc("search.candidates", stats.candidates)
            _METRICS.inc("search.verifications", stats.verifications)
            _METRICS.inc("search.results", stats.results)
        if _TRACER.enabled:
            # filtering counters on the trace make the slow-query log
            # self-explanatory (a slow query is usually a candidate flood)
            _TRACER.annotate(
                candidates=stats.candidates,
                verifications=stats.verifications,
                results=stats.results,
            )
        return SearchResult(
            query=query,
            threshold=threshold,
            ids=tuple(int(i) for i in ids),
            stats=stats,
            seconds=time.perf_counter() - started,
        )

    def search(self, query: str, threshold) -> SearchResult:
        raise NotImplementedError

    def search_many(
        self, queries: Sequence[str], threshold
    ) -> List[SearchResult]:
        """Serial batch; :meth:`repro.engine.SimilarityEngine.search_batch`
        is the parallel equivalent."""
        return [self.search(query, threshold) for query in queries]
