"""Shared scaffolding for the count-filter searchers.

:class:`JaccardSearcher`, :class:`EditDistanceSearcher` and
:class:`GroupedJaccardSearcher` used to each carry their own copy of the
algorithm-name validation, the random-access guard (PForDelta cannot run
MergeSkip, per Figure 7.2), the T-occurrence dispatch, and the post-query
stats bookkeeping.  This module is the single home for all of it, plus the
two pieces the batched engine adds to every searcher:

* an optional shared :class:`~repro.engine.cache.DecodeCache` — when set,
  probed posting lists are wrapped so hot lists are served from their
  cached decoded form instead of being re-decoded per query;
* the :class:`~repro.search.result.SearchResult` plumbing — ``search()``
  returns a frozen result carrying its own :class:`SearchStats`.

Queries run in two phases shared by the serial and batched paths:
:meth:`CountFilterSearcher._plan` reduces a query to a
:class:`QueryPlan` (which posting lists to probe, at what T-occurrence
threshold, plus whatever the verifier needs), and
:meth:`CountFilterSearcher._verify` turns candidate ids into answers.
Between the two sits candidate generation — per query via
:func:`~repro.search.toccurrence.run_algorithm`, or for a whole batch at
once via :mod:`repro.search.batchkernels`.  Because both paths share the
plan and verify code verbatim, the serial path is the batched kernels'
parity oracle by construction: any divergence is inside the kernels, where
the fuzz suite hunts for it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..obs import METRICS as _METRICS
from ..obs import TRACER as _TRACER
from .batchkernels import BATCH_ALGORITHMS, batch_candidates, decode_postings
from .result import SearchResult, SearchStats
from .toccurrence import ALGORITHMS, run_algorithm

__all__ = ["CountFilterSearcher", "QueryPlan"]


@dataclass
class QueryPlan:
    """One query reduced to its T-occurrence problem (or lack of one).

    ``mode`` selects how candidates are produced:

    * ``"filter"`` — solve the T-occurrence problem over ``lists`` at
      ``count_threshold`` (serial algorithm or batch kernel);
    * ``"direct"`` — ``direct_candidates`` were computed during planning
      (e.g. the edit-distance length-filter fallback when T degenerates);
    * ``"empty"`` — the query provably has no answers.

    ``payload`` carries whatever the subclass's verifier needs (query token
    ids, length window, ...); the base class never looks inside it.
    """

    query: str
    threshold: object
    stats: SearchStats
    started: float
    mode: str = "empty"
    lists: List = field(default_factory=list)
    count_threshold: int = 1
    payload: tuple = ()
    direct_candidates: Optional[List[int]] = None


class CountFilterSearcher:
    """Base for searchers that answer queries via the count filter.

    ``allowed_algorithms`` lets subclasses restrict the menu (the grouped
    searcher does not implement DivideSkip).
    """

    #: subclasses implementing the ``_plan``/``_verify`` hooks set this;
    #: only they can route candidate generation through the batch kernels.
    supports_plan_hooks = False

    def __init__(
        self,
        index,
        algorithm: str,
        cache=None,
        allowed_algorithms: Sequence[str] = tuple(ALGORITHMS),
    ) -> None:
        if algorithm not in allowed_algorithms:
            raise ValueError(
                f"algorithm must be one of {tuple(allowed_algorithms)}, "
                f"got {algorithm!r}"
            )
        if algorithm != "scancount" and not index.supports_random_access:
            raise ValueError(
                f"scheme {index.scheme!r} supports only sequential decoding; "
                "use algorithm='scancount' (cf. Figure 7.2: PForDelta cannot "
                "run MergeSkip)"
            )
        self.index = index
        self.algorithm = algorithm
        self.cache = cache

    # ------------------------------------------------------------------ #
    # shared query machinery
    # ------------------------------------------------------------------ #
    @property
    def supports_batch_kernel(self) -> bool:
        """True when batches can run through :mod:`~repro.search.batchkernels`."""
        return self.supports_plan_hooks and self.algorithm in BATCH_ALGORITHMS

    def _probe_lists(self, tokens: Sequence[int]) -> List:
        """Posting lists for ``tokens``, cache-wrapped when a cache is set."""
        lists = self.index.posting_lists(tokens)
        cache = self.cache
        if cache is not None:
            lists = [cache.wrap(lst) for lst in lists]
        return lists

    def _candidates(self, lists, threshold: int):
        return run_algorithm(
            self.algorithm, lists, threshold, len(self.index.collection)
        )

    def _plan(self, query: str, threshold) -> QueryPlan:
        """Reduce one query to a :class:`QueryPlan` (subclass hook)."""
        raise NotImplementedError

    def _verify(self, plan: QueryPlan, candidates: List[int]) -> List[int]:
        """Exact-verify candidate ids against ``plan`` (subclass hook)."""
        raise NotImplementedError

    def _finish(
        self,
        query: str,
        threshold: float,
        stats: SearchStats,
        ids: List[int],
        started: float,
    ) -> SearchResult:
        """Freeze one query's outcome and record the per-query counters."""
        stats.results = len(ids)
        if _METRICS.enabled:
            _METRICS.inc("search.queries")
            _METRICS.inc("search.candidates", stats.candidates)
            _METRICS.inc("search.verifications", stats.verifications)
            _METRICS.inc("search.results", stats.results)
        if _TRACER.enabled:
            # filtering counters on the trace make the slow-query log
            # self-explanatory (a slow query is usually a candidate flood)
            _TRACER.annotate(
                candidates=stats.candidates,
                verifications=stats.verifications,
                results=stats.results,
            )
        return SearchResult(
            query=query,
            threshold=threshold,
            ids=tuple(int(i) for i in ids),
            stats=stats,
            seconds=time.perf_counter() - started,
        )

    def _search_traced(self, query: str, threshold) -> SearchResult:
        """Serial plan -> filter -> verify flow (the parity oracle)."""
        plan = self._plan(query, threshold)
        return self._execute(plan, None)

    def _execute(
        self, plan: QueryPlan, kernel_candidates
    ) -> SearchResult:
        """Finish a plan: candidates (given or computed), verify, freeze."""
        if plan.mode == "empty":
            return self._finish(
                plan.query, plan.threshold, plan.stats, [], plan.started
            )
        if kernel_candidates is not None:
            candidates = [int(i) for i in kernel_candidates]
        elif plan.mode == "direct":
            candidates = plan.direct_candidates or []
        else:
            with _METRICS.span("search.filter"):
                candidates = self._candidates(
                    plan.lists, plan.count_threshold
                ).tolist()
        plan.stats.candidates = len(candidates)
        with _METRICS.span("search.verify"):
            results = self._verify(plan, candidates)
        return self._finish(
            plan.query, plan.threshold, plan.stats, results, plan.started
        )

    def search(self, query: str, threshold) -> SearchResult:
        raise NotImplementedError

    def search_many(
        self, queries: Sequence[str], threshold
    ) -> List[SearchResult]:
        """Serial batch; :meth:`repro.engine.SimilarityEngine.search_batch`
        is the parallel equivalent."""
        return [self.search(query, threshold) for query in queries]

    def search_many_batched(
        self, queries: Sequence[str], threshold
    ) -> List[SearchResult]:
        """Answer a batch through the batch-native T-occurrence kernels.

        Plans every query, solves all the "filter"-mode plans in one
        :func:`~repro.search.batchkernels.batch_candidates` call (each
        distinct posting list decoded once for the whole batch), then
        verifies per query.  Returns exactly :meth:`search_many`'s results;
        per-result ``seconds`` are batch-attributed rather than per-query.
        Falls back to the serial path when the searcher or algorithm has no
        batch kernel (e.g. DivideSkip), or when the tracer is enabled with
        *no trace active on this thread* — the slow-query log wants one
        trace document per query, which only the per-query path produces.
        Inside an already-active trace (the serving layer's batch trace)
        the kernel path is kept: starting per-query root traces there is
        impossible anyway, and the batched ``search.filter`` /
        ``search.verify`` spans land in the caller's tree instead.
        """
        if not self.supports_batch_kernel or (
            _TRACER.enabled and not _TRACER.is_tracing()
        ):
            return self.search_many(queries, threshold)
        plans = [self._plan(query, threshold) for query in queries]
        rows = [i for i, plan in enumerate(plans) if plan.mode == "filter"]
        answers: List = []
        if rows:
            memo: dict = {}
            with _METRICS.span("search.filter"):
                per_query_arrays = [
                    decode_postings(plans[i].lists, self.cache, memo)
                    for i in rows
                ]
                answers = batch_candidates(
                    self.algorithm,
                    per_query_arrays,
                    [plans[i].count_threshold for i in rows],
                    len(self.index.collection),
                )
        by_row = dict(zip(rows, answers))
        return [
            self._execute(plan, by_row.get(i))
            for i, plan in enumerate(plans)
        ]
