"""String similarity search (Definition 1) over compressed inverted indexes.

The offline pipeline of the paper: tokenize the collection, build one
posting list per signature under a chosen compression scheme (Uncomp /
PForDelta / MILC / CSS), and answer ``SIM(r, s) >= tau`` queries with the
count filter — a T-occurrence problem solved by ScanCount or MergeSkip —
followed by exact verification.

The index is threshold-free: ``tau`` arrives with the query, as Section 2.1
requires for the search (as opposed to join) setting.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..compression.base import SortedIDList
from ..core.framework import offline_factory
from ..obs import METRICS as _METRICS
from ..obs import trace_query as _trace_query
from ..similarity.measures import length_bounds, required_overlap
from ..similarity.tokenize import TokenizedCollection
from ..similarity.verify import verify_overlap_from
from .base import CountFilterSearcher, QueryPlan
from .result import SearchResult, SearchStats

__all__ = ["InvertedIndex", "JaccardSearcher", "SearchStats", "SearchResult"]


class InvertedIndex:
    """Signature -> posting-list index under a pluggable offline scheme."""

    def __init__(
        self,
        collection: TokenizedCollection,
        scheme: str = "css",
        **scheme_kwargs,
    ) -> None:
        self.collection = collection
        self.scheme = scheme
        factory = offline_factory(scheme)
        grouped: Dict[int, List[int]] = {}
        for record_id, tokens in enumerate(collection.records):
            for token in tokens.tolist():
                grouped.setdefault(token, []).append(record_id)
        start = time.perf_counter()
        with _METRICS.span("index.build"):
            self.lists: Dict[int, SortedIDList] = {
                token: factory(np.asarray(ids, dtype=np.int64), **scheme_kwargs)
                for token, ids in grouped.items()
            }
        self.build_seconds = time.perf_counter() - start
        if _METRICS.enabled:
            _METRICS.inc("index.lists_built", len(self.lists))
            _METRICS.inc(
                "index.postings_indexed",
                sum(len(ids) for ids in grouped.values()),
            )
        self.supports_random_access = all(
            lst.supports_random_access for lst in self.lists.values()
        )

    def __len__(self) -> int:
        return len(self.lists)

    def posting_lists(self, tokens: Sequence[int]) -> List[SortedIDList]:
        """Posting lists of the query tokens that exist in the index.

        Duplicate tokens are collapsed: Definition 1's overlap is set
        semantics, so a repeated query token must not contribute its posting
        list twice to the T-occurrence count.
        """
        return [
            self.lists[token]
            for token in dict.fromkeys(tokens)
            if token in self.lists
        ]

    def size_bits(self) -> int:
        """Total index size under the paper's accounting (the tables' metric)."""
        return sum(lst.size_bits() for lst in self.lists.values())

    def size_mb(self) -> float:
        return self.size_bits() / 8 / 1024 / 1024

    def num_postings(self) -> int:
        return sum(len(lst) for lst in self.lists.values())

    def compression_ratio(self) -> float:
        compressed = self.size_bits()
        if compressed == 0:
            return 1.0
        from ..compression.base import ELEMENT_BITS

        return ELEMENT_BITS * self.num_postings() / compressed


class JaccardSearcher(CountFilterSearcher):
    """Count-filter similarity search for Jaccard (and Cosine/Dice) metrics."""

    supports_plan_hooks = True

    def __init__(
        self,
        index: InvertedIndex,
        algorithm: str = "mergeskip",
        metric: str = "jaccard",
        cache=None,
    ) -> None:
        super().__init__(index, algorithm, cache=cache)
        self.metric = metric

    def search(self, query: str, threshold: float) -> SearchResult:
        """Record ids with ``SIM(query, record) >= threshold``, ascending."""
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        with _trace_query(query, threshold):
            return self._search_traced(query, threshold)

    def _plan(self, query: str, threshold: float) -> QueryPlan:
        # the batched path enters here directly, bypassing search()
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        started = time.perf_counter()
        stats = SearchStats()
        collection = self.index.collection
        query_ids = collection.encode_query(query)
        signature_size = collection.signature_size(query)
        plan = QueryPlan(
            query=query, threshold=threshold, stats=stats, started=started
        )
        if signature_size == 0:
            return plan
        # minimum count over all admissible candidate lengths: for Jaccard
        # |s| >= tau |r| implies overlap >= ceil(tau |r|)  (Section 3.1.1)
        low, high = length_bounds(signature_size, threshold, self.metric)
        count_threshold = required_overlap(
            signature_size, low, threshold, self.metric
        )
        stats.count_threshold = count_threshold
        if count_threshold > query_ids.size:
            # too many query tokens unseen in the collection
            return plan
        lists = self._probe_lists(query_ids.tolist())
        stats.lists_probed = len(lists)
        stats.postings_available = sum(len(lst) for lst in lists)
        plan.mode = "filter"
        plan.lists = lists
        plan.count_threshold = max(1, count_threshold)
        plan.payload = (query_ids, low, high, signature_size)
        return plan

    def _verify(self, plan: QueryPlan, candidates: List[int]) -> List[int]:
        query_ids, low, high, signature_size = plan.payload
        collection = self.index.collection
        threshold = plan.threshold
        stats = plan.stats
        results: List[int] = []
        for candidate in candidates:
            record = collection.records[candidate]
            if not low <= record.size <= high:
                continue
            needed = required_overlap(
                signature_size, record.size, threshold, self.metric
            )
            stats.verifications += 1
            if (
                verify_overlap_from(query_ids, record, 0, 0, 0, needed)
                >= needed
            ):
                results.append(candidate)
        return results
