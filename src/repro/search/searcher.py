"""String similarity search (Definition 1) over compressed inverted indexes.

The offline pipeline of the paper: tokenize the collection, build one
posting list per signature under a chosen compression scheme (Uncomp /
PForDelta / MILC / CSS), and answer ``SIM(r, s) >= tau`` queries with the
count filter — a T-occurrence problem solved by ScanCount or MergeSkip —
followed by exact verification.

The index is threshold-free: ``tau`` arrives with the query, as Section 2.1
requires for the search (as opposed to join) setting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..compression.base import SortedIDList
from ..core.framework import offline_factory
from ..obs import METRICS as _METRICS
from ..similarity.measures import length_bounds, required_overlap
from ..similarity.tokenize import TokenizedCollection
from ..similarity.verify import verify_overlap_from
from .toccurrence import divide_skip, merge_skip, scan_count

__all__ = ["InvertedIndex", "JaccardSearcher", "SearchStats"]

_ALGORITHMS = ("scancount", "mergeskip", "divideskip")


@dataclass
class SearchStats:
    """Filter-and-verification counters for the most recent query.

    The filtering-power lens of the paper's evaluation: how many posting
    lists were probed, how many candidates survived the count filter, how
    many reached exact verification, how many answered.
    """

    lists_probed: int = 0
    postings_available: int = 0
    candidates: int = 0
    verifications: int = 0
    results: int = 0
    count_threshold: int = 0


class InvertedIndex:
    """Signature -> posting-list index under a pluggable offline scheme."""

    def __init__(
        self,
        collection: TokenizedCollection,
        scheme: str = "css",
        **scheme_kwargs,
    ) -> None:
        self.collection = collection
        self.scheme = scheme
        factory = offline_factory(scheme)
        grouped: Dict[int, List[int]] = {}
        for record_id, tokens in enumerate(collection.records):
            for token in tokens.tolist():
                grouped.setdefault(token, []).append(record_id)
        start = time.perf_counter()
        with _METRICS.span("index.build"):
            self.lists: Dict[int, SortedIDList] = {
                token: factory(np.asarray(ids, dtype=np.int64), **scheme_kwargs)
                for token, ids in grouped.items()
            }
        self.build_seconds = time.perf_counter() - start
        if _METRICS.enabled:
            _METRICS.inc("index.lists_built", len(self.lists))
            _METRICS.inc(
                "index.postings_indexed",
                sum(len(ids) for ids in grouped.values()),
            )
        self.supports_random_access = all(
            lst.supports_random_access for lst in self.lists.values()
        )

    def __len__(self) -> int:
        return len(self.lists)

    def posting_lists(self, tokens: Sequence[int]) -> List[SortedIDList]:
        """Posting lists of the query tokens that exist in the index."""
        return [self.lists[token] for token in tokens if token in self.lists]

    def size_bits(self) -> int:
        """Total index size under the paper's accounting (the tables' metric)."""
        return sum(lst.size_bits() for lst in self.lists.values())

    def size_mb(self) -> float:
        return self.size_bits() / 8 / 1024 / 1024

    def num_postings(self) -> int:
        return sum(len(lst) for lst in self.lists.values())

    def compression_ratio(self) -> float:
        compressed = self.size_bits()
        if compressed == 0:
            return 1.0
        from ..compression.base import ELEMENT_BITS

        return ELEMENT_BITS * self.num_postings() / compressed


class JaccardSearcher:
    """Count-filter similarity search for Jaccard (and Cosine/Dice) metrics."""

    def __init__(
        self,
        index: InvertedIndex,
        algorithm: str = "mergeskip",
        metric: str = "jaccard",
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
            )
        if algorithm != "scancount" and not index.supports_random_access:
            raise ValueError(
                f"scheme {index.scheme!r} supports only sequential decoding; "
                "use algorithm='scancount' (cf. Figure 7.2: PForDelta cannot "
                "run MergeSkip)"
            )
        self.index = index
        self.algorithm = algorithm
        self.metric = metric
        self.last_stats = SearchStats()

    def _candidates(
        self, lists: Sequence[SortedIDList], threshold: int
    ) -> np.ndarray:
        if self.algorithm == "scancount":
            return scan_count(lists, threshold, len(self.index.collection))
        if self.algorithm == "mergeskip":
            return merge_skip(lists, threshold)
        return divide_skip(lists, threshold)

    def search(self, query: str, threshold: float) -> List[int]:
        """Record ids with ``SIM(query, record) >= threshold``, ascending."""
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        stats = SearchStats()
        self.last_stats = stats
        collection = self.index.collection
        query_ids = collection.encode_query(query)
        signature_size = collection.signature_size(query)
        if signature_size == 0:
            return []
        # minimum count over all admissible candidate lengths: for Jaccard
        # |s| >= tau |r| implies overlap >= ceil(tau |r|)  (Section 3.1.1)
        low, high = length_bounds(signature_size, threshold, self.metric)
        count_threshold = required_overlap(
            signature_size, low, threshold, self.metric
        )
        stats.count_threshold = count_threshold
        if count_threshold > query_ids.size:
            return []  # too many query tokens unseen in the collection
        lists = self.index.posting_lists(query_ids.tolist())
        stats.lists_probed = len(lists)
        stats.postings_available = sum(len(lst) for lst in lists)
        with _METRICS.span("search.filter"):
            candidates = self._candidates(lists, max(1, count_threshold))
        stats.candidates = int(candidates.size)

        results: List[int] = []
        with _METRICS.span("search.verify"):
            for candidate in candidates.tolist():
                record = collection.records[candidate]
                if not low <= record.size <= high:
                    continue
                needed = required_overlap(
                    signature_size, record.size, threshold, self.metric
                )
                stats.verifications += 1
                if (
                    verify_overlap_from(query_ids, record, 0, 0, 0, needed)
                    >= needed
                ):
                    results.append(candidate)
        stats.results = len(results)
        if _METRICS.enabled:
            _METRICS.inc("search.queries")
            _METRICS.inc("search.candidates", stats.candidates)
            _METRICS.inc("search.verifications", stats.verifications)
            _METRICS.inc("search.results", stats.results)
        return results

    def search_many(
        self, queries: Sequence[str], threshold: float
    ) -> List[List[int]]:
        return [self.search(query, threshold) for query in queries]
