"""T-Occurrence algorithms: ScanCount and MergeSkip (Li et al.), DivideSkip.

The count filter reduces similarity search to the *T-occurrence problem*:
given the posting lists of the query's signatures, find every record id that
appears in at least ``T`` of them (Section 3.1.1).

* :func:`scan_count` — traverse every list fully, bumping a per-record
  counter.  Works on any codec, including sequential-decode-only PForDelta
  (the only algorithm PForDelta supports, per Figure 7.2).  The counting is
  numpy-vectorized; this is the natural Python rendering of ScanCount.
* :func:`merge_skip` — a heap over list cursors that *skips*: when the top
  element cannot reach ``T`` occurrences, the T-1 smallest cursors jump
  (binary search, directly on the compressed layout) to the next element
  that still could.  Requires random access — Uncomp, MILC, CSS.
* :func:`divide_skip` — DivideSkip (same paper): the ``L`` longest lists are
  set aside, MergeSkip solves the short lists with threshold ``T - L``, and
  survivors are verified against the long lists by binary search.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Sequence

import numpy as np

from ..compression.base import SortedIDList
from ..obs import METRICS as _METRICS

__all__ = ["scan_count", "merge_skip", "divide_skip", "ALGORITHMS", "run_algorithm"]


def scan_count(
    lists: Sequence[SortedIDList], threshold: int, universe: int
) -> np.ndarray:
    """Record ids occurring in at least ``threshold`` of ``lists``.

    ``universe`` bounds the id space (number of records); the counter array
    is O(universe) but reused allocations make this the cheapest full-scan
    strategy.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    if not lists or len(lists) < threshold:
        return np.empty(0, dtype=np.int64)
    arrays: List[np.ndarray] = []
    max_id = -1
    for lst in lists:
        # repro: noqa RA01 -- ScanCount's contract is one full scan per list
        ids = lst.to_array()
        if ids.size:
            arrays.append(ids)
            max_id = max(max_id, int(ids[-1]))
    if max_id < 0:
        return np.empty(0, dtype=np.int64)
    # a dynamic index may have grown past the build-time universe (sharded
    # add() after load); the counter must cover every id actually posted
    counts = np.zeros(max(universe, max_id + 1), dtype=np.int32)
    scanned = 0
    for ids in arrays:
        counts[ids] += 1
        scanned += int(ids.size)
    if _METRICS.enabled:
        _METRICS.inc("toccurrence.lists_scanned", len(lists))
        _METRICS.inc("toccurrence.postings_scanned", scanned)
    return np.nonzero(counts >= threshold)[0].astype(np.int64)


def merge_skip(lists: Sequence[SortedIDList], threshold: int) -> np.ndarray:
    """MergeSkip over list cursors; seeks run on the compressed layout."""
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    cursors = [lst.cursor() for lst in lists if len(lst)]
    if len(cursors) < threshold:
        return np.empty(0, dtype=np.int64)

    heap: List = [
        (cursor.value(), index) for index, cursor in enumerate(cursors)
    ]
    heapq.heapify(heap)
    results: List[int] = []
    heap_pops = 0
    skip_jumps = 0

    while len(heap) >= threshold:
        top_value, _ = heap[0]
        popped: List[int] = []
        while heap and heap[0][0] == top_value:
            popped.append(heapq.heappop(heap)[1])
        heap_pops += len(popped)

        if len(popped) >= threshold:
            results.append(top_value)
            for index in popped:
                cursor = cursors[index]
                cursor.advance()
                if not cursor.exhausted:
                    heapq.heappush(heap, (cursor.value(), index))
            continue

        # top_value cannot reach T occurrences: pop down to T-1 frontiers and
        # jump everything popped to the smallest remaining frontier.
        extra = threshold - 1 - len(popped)
        while extra > 0 and heap:
            popped.append(heapq.heappop(heap)[1])
            heap_pops += 1
            extra -= 1
        if not heap:
            break  # fewer than T lists remain: no further answers possible
        skip_to = heap[0][0]
        skip_jumps += len(popped)
        for index in popped:
            cursor = cursors[index]
            cursor.seek(skip_to)
            if not cursor.exhausted:
                heapq.heappush(heap, (cursor.value(), index))
    if _METRICS.enabled:
        _METRICS.inc("toccurrence.heap_pops", heap_pops)
        _METRICS.inc("toccurrence.skip_jumps", skip_jumps)
    return np.asarray(results, dtype=np.int64)


def divide_skip(
    lists: Sequence[SortedIDList], threshold: int, mu: float = 0.01
) -> np.ndarray:
    """DivideSkip: long lists verified by lookup, short lists via MergeSkip.

    ``L = min(T - 1, T / (mu * log2(longest) + 1))`` lists are "long"; a
    record must occur ``T - L`` times in the short lists, then its membership
    in the long lists is checked by binary search.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    populated = [lst for lst in lists if len(lst)]
    if len(populated) < threshold:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(populated, key=len)
    longest = len(ordered[-1])
    num_long = min(
        threshold - 1,
        int(threshold / (mu * math.log2(max(longest, 2)) + 1)),
    )
    if num_long <= 0:
        return merge_skip(populated, threshold)
    short, long_lists = ordered[:-num_long], ordered[-num_long:]

    # num_long <= threshold - 1 guarantees the short-list threshold stays >= 1
    short_threshold = threshold - num_long
    candidates = merge_skip(short, short_threshold)

    results: List[int] = []
    membership_checks = 0
    for candidate in candidates.tolist():
        membership_checks += len(long_lists)
        count = sum(1 for lst in long_lists if lst.contains(candidate))
        if count < threshold - len(short):
            continue
        membership_checks += len(short)
        count += sum(1 for lst in short if lst.contains(candidate))
        if count >= threshold:
            results.append(candidate)
    if _METRICS.enabled:
        _METRICS.inc("toccurrence.long_lists", len(long_lists))
        _METRICS.inc("toccurrence.membership_checks", membership_checks)
    return np.asarray(results, dtype=np.int64)


#: algorithm-name -> solver; the single source of truth for which
#: T-occurrence algorithms exist (searchers validate against these keys
#: instead of keeping their own copies of the name tuple).
ALGORITHMS = {
    "scancount": scan_count,
    "mergeskip": merge_skip,
    "divideskip": divide_skip,
}


def run_algorithm(
    name: str,
    lists: Sequence[SortedIDList],
    threshold: int,
    universe: int,
) -> np.ndarray:
    """Solve the T-occurrence problem with the named algorithm.

    ``universe`` (the record-id space) is only consumed by ScanCount; the
    skip-based algorithms ignore it.
    """
    if name == "scancount":
        return scan_count(lists, threshold, universe)
    try:
        solver = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"algorithm must be one of {tuple(ALGORITHMS)}, got {name!r}"
        ) from None
    return solver(lists, threshold)
