"""String similarity search (SSS) engines over compressed inverted indexes."""

from .brute import brute_edit_distance_search, brute_similarity_search
from .dynamic import DynamicInvertedIndex
from .edsearch import EditDistanceSearcher
from .grouped import GroupedJaccardSearcher, LengthGroupedIndex
from .searcher import InvertedIndex, JaccardSearcher
from .toccurrence import divide_skip, merge_skip, scan_count

__all__ = [
    "InvertedIndex",
    "DynamicInvertedIndex",
    "JaccardSearcher",
    "LengthGroupedIndex",
    "GroupedJaccardSearcher",
    "EditDistanceSearcher",
    "scan_count",
    "merge_skip",
    "divide_skip",
    "brute_similarity_search",
    "brute_edit_distance_search",
]
