"""String similarity search (SSS) engines over compressed inverted indexes."""

from .base import CountFilterSearcher
from .brute import brute_edit_distance_search, brute_similarity_search
from .dynamic import DynamicInvertedIndex
from .edsearch import EditDistanceSearcher
from .grouped import GroupedJaccardSearcher, LengthGroupedIndex
from .result import SearchResult, SearchStats
from .searcher import InvertedIndex, JaccardSearcher
from .toccurrence import divide_skip, merge_skip, run_algorithm, scan_count

__all__ = [
    "InvertedIndex",
    "DynamicInvertedIndex",
    "CountFilterSearcher",
    "JaccardSearcher",
    "LengthGroupedIndex",
    "GroupedJaccardSearcher",
    "EditDistanceSearcher",
    "SearchResult",
    "SearchStats",
    "scan_count",
    "merge_skip",
    "divide_skip",
    "run_algorithm",
    "brute_similarity_search",
    "brute_edit_distance_search",
]
