"""Length-grouped inverted index: the length filter pushed into the index.

The plain count-filter searcher must use one T-occurrence threshold valid
for *every* admissible candidate length — the weakest bound,
``required_overlap(|r|, tau·|r|)``.  Li et al.'s framework tightens this by
partitioning records into signature-length groups: each group [lo, hi] gets
its own posting lists, a query probes only groups intersecting its length
window, and within a group the threshold uses the group's minimum length —
strictly stronger pruning for the same answers.

The trade: one posting-list set per group multiplies metadata overhead
(shorter lists compress worse), which is why the group width is a knob.
:class:`GroupedJaccardSearcher` returns exactly the same results as
:class:`~repro.search.searcher.JaccardSearcher`; tests assert both the
equality and the candidate-count reduction.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List

import numpy as np

from ..compression.base import SortedIDList
from ..core.framework import offline_factory
from ..obs import trace_query as _trace_query
from ..similarity.measures import length_bounds, required_overlap
from ..similarity.tokenize import TokenizedCollection
from ..similarity.verify import verify_overlap_from
from .base import CountFilterSearcher
from .result import SearchResult, SearchStats
from .toccurrence import merge_skip, scan_count

__all__ = ["LengthGroupedIndex", "GroupedJaccardSearcher"]


class LengthGroupedIndex:
    """Per-length-group posting lists under a pluggable offline scheme.

    ``group_width`` controls the geometric width of the groups: group ``g``
    covers signature sizes ``[base^g, base^(g+1))`` with
    ``base = 1 + group_width`` — geometric groups keep the per-group
    threshold tight at every scale (a fixed arithmetic width would be loose
    for short records and needlessly fine for long ones).
    """

    def __init__(
        self,
        collection: TokenizedCollection,
        scheme: str = "css",
        group_width: float = 0.25,
        **scheme_kwargs,
    ) -> None:
        if group_width <= 0:
            raise ValueError(f"group_width must be positive, got {group_width}")
        self.collection = collection
        self.scheme = scheme
        self.group_width = group_width
        self._base = 1.0 + group_width
        factory = offline_factory(scheme)

        grouped: Dict[int, Dict[int, List[int]]] = {}
        bounds: Dict[int, int] = {}  # group -> min signature size present
        for record_id, record in enumerate(collection.records):
            if record.size == 0:
                continue
            group = self.group_of(record.size)
            bounds[group] = min(bounds.get(group, record.size), record.size)
            lists = grouped.setdefault(group, {})
            for token in record.tolist():
                lists.setdefault(token, []).append(record_id)

        self.groups: Dict[int, Dict[int, SortedIDList]] = {
            group: {
                token: factory(np.asarray(ids, dtype=np.int64), **scheme_kwargs)
                for token, ids in lists.items()
            }
            for group, lists in grouped.items()
        }
        self.group_min_size = bounds
        self.supports_random_access = all(
            lst.supports_random_access
            for lists in self.groups.values()
            for lst in lists.values()
        )

    def group_of(self, size: int) -> int:
        """Group index covering signature size ``size``."""
        return int(math.floor(math.log(max(size, 1), self._base)))

    def groups_for_range(self, low: int, high: int) -> List[int]:
        """Groups intersecting the candidate-size window [low, high]."""
        first = self.group_of(max(1, low))
        last = self.group_of(max(1, high))
        return [g for g in range(first, last + 1) if g in self.groups]

    def size_bits(self) -> int:
        return sum(
            lst.size_bits()
            for lists in self.groups.values()
            for lst in lists.values()
        )

    def num_groups(self) -> int:
        return len(self.groups)


class GroupedJaccardSearcher(CountFilterSearcher):
    """Count-filter search with per-group T-occurrence thresholds."""

    def __init__(
        self,
        index: LengthGroupedIndex,
        algorithm: str = "mergeskip",
        metric: str = "jaccard",
        cache=None,
    ) -> None:
        super().__init__(
            index,
            algorithm,
            cache=cache,
            allowed_algorithms=("scancount", "mergeskip"),
        )
        self.metric = metric

    def search(self, query: str, threshold: float) -> SearchResult:
        """Record ids with ``SIM >= threshold`` — same answers as the plain
        searcher, computed with tighter per-group thresholds."""
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        with _trace_query(query, threshold, kind="search.grouped"):
            return self._search_traced(query, threshold)

    def _search_traced(self, query: str, threshold: float) -> SearchResult:
        started = time.perf_counter()
        stats = SearchStats()
        collection = self.index.collection
        query_ids = collection.encode_query(query)
        signature_size = collection.signature_size(query)
        if signature_size == 0:
            return self._finish(query, threshold, stats, [], started)
        low, high = length_bounds(signature_size, threshold, self.metric)

        results: List[int] = []
        cache = self.cache
        tokens = query_ids.tolist()
        for group in self.index.groups_for_range(low, high):
            lists = self.index.groups[group]
            probe = [lists[token] for token in tokens if token in lists]
            if not probe:
                continue
            if cache is not None:
                probe = [cache.wrap(lst) for lst in probe]
            group_floor = max(low, self.index.group_min_size[group])
            group_threshold = required_overlap(
                signature_size, group_floor, threshold, self.metric
            )
            if group_threshold > query_ids.size:
                continue
            stats.lists_probed += len(probe)
            stats.postings_available += sum(len(lst) for lst in probe)
            stats.count_threshold = max(
                stats.count_threshold, group_threshold
            )
            if self.algorithm == "scancount":
                candidates = scan_count(
                    probe, max(1, group_threshold), len(collection)
                )
            else:
                candidates = merge_skip(probe, max(1, group_threshold))
            stats.candidates += int(candidates.size)
            for candidate in candidates.tolist():
                record = collection.records[candidate]
                if not low <= record.size <= high:
                    continue
                needed = required_overlap(
                    signature_size, record.size, threshold, self.metric
                )
                stats.verifications += 1
                if (
                    verify_overlap_from(query_ids, record, 0, 0, 0, needed)
                    >= needed
                ):
                    results.append(candidate)
        results.sort()
        return self._finish(query, threshold, stats, results, started)
