"""Dynamic similarity-search index: append records without rebuilding.

The conclusion of the paper points out that its online compression
algorithms "can be applied to other problems that require on-the-fly list
construction".  This module is that application inside the search path: an
inverted index whose posting lists are the *online* two-region lists
(Fix/Vari/Adapt), so new records stream in — ids ascend by construction —
while queries keep running over the already-compressed blocks.

This is what an ingesting service (log search, streaming dedup) deploys:
the offline :class:`~repro.search.searcher.InvertedIndex` requires the full
corpus up front; :class:`DynamicInvertedIndex` does not, at a small
compression-ratio cost (exactly the offline-vs-online gap of
Tables 7.2/7.3).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

import numpy as np

from ..compression.online import OnlineSortedIDList
from ..core.framework import online_factory
from ..similarity.tokenize import TokenizedCollection, qgrams, word_tokens

__all__ = ["DynamicInvertedIndex"]


class DynamicInvertedIndex:
    """Appendable inverted index over online compressed posting lists.

    Quacks like :class:`~repro.search.searcher.InvertedIndex` (``lists``,
    ``posting_lists``, ``size_bits``, ``collection``) so the existing
    searchers run on it unchanged.
    """

    supports_random_access = True

    def __init__(
        self,
        mode: str = "word",
        q: int = 3,
        scheme: str = "adapt",
        **scheme_kwargs,
    ) -> None:
        if mode not in ("word", "qgram"):
            raise ValueError(f"mode must be 'word' or 'qgram', got {mode!r}")
        self.mode = mode
        self.q = q if mode == "qgram" else 0
        self.scheme = scheme
        self._factory = online_factory(scheme)
        self._scheme_kwargs = scheme_kwargs
        self.lists: Dict[int, OnlineSortedIDList] = {}
        self.build_seconds = 0.0
        # a TokenizedCollection grown record by record; the searchers consume
        # its records/lengths/dictionary exactly as in the offline path
        from ..similarity.tokenize import TokenDictionary

        self.collection = TokenizedCollection(
            strings=[],
            records=[],
            dictionary=TokenDictionary([]),
            mode=mode,
            q=self.q,
        )
        # note: new tokens get ids in arrival order rather than global
        # frequency order — harmless for the count-filter searchers (they
        # only need one consistent order), but this index is not a substrate
        # for prefix-filter joins, which require the frequency order.
        self._lengths: List[int] = []
        self._lengths_dirty = False
        # durability hook: once a snapshot has been saved, every later
        # add() is journaled here so open() can replay it (repro.storage)
        self._append_log: Optional[TextIO] = None
        self._append_log_path: Optional[Path] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.lists)

    @property
    def num_records(self) -> int:
        return len(self.collection.records)

    def add(self, text: str) -> int:
        """Ingest one record; returns its id (ids ascend by insertion)."""
        record_id = len(self.collection.strings)
        tokens = (
            qgrams(text, self.q) if self.mode == "qgram" else word_tokens(text)
        )
        token_ids = self.collection.dictionary.encode(tokens, add_missing=True)
        self.collection.strings.append(text)
        self.collection.records.append(token_ids)
        self._lengths.append(int(token_ids.size))
        self._lengths_dirty = True
        for token in token_ids.tolist():
            posting = self.lists.get(token)
            if posting is None:
                posting = self._factory(**self._scheme_kwargs)
                self.lists[token] = posting
            posting.append(record_id)
        if self._append_log is not None:
            self._append_log.write(
                json.dumps({"seq": record_id, "text": text}) + "\n"
            )
            self._append_log.flush()
        return record_id

    def add_many(self, texts: Sequence[str]) -> List[int]:
        return [self.add(text) for text in texts]

    # ------------------------------------------------------------------ #
    # durability (snapshot + append log, managed by repro.storage)
    # ------------------------------------------------------------------ #
    @property
    def append_log_path(self) -> Optional[Path]:
        """Where post-snapshot ``add()``s are journaled (``None`` = not armed)."""
        return self._append_log_path

    def attach_append_log(self, path: Union[str, Path]) -> None:
        """Journal every subsequent ``add()`` to ``path`` (JSONL, appended).

        Called by the storage layer right after a snapshot is written (or
        replayed): the snapshot plus the log reconstructs the exact current
        state, so the pair stays loadable without re-snapshotting on every
        ingest.
        """
        self.detach_append_log()
        self._append_log_path = Path(path)
        self._append_log = open(path, "a", encoding="utf-8")

    def detach_append_log(self) -> None:
        """Stop journaling (e.g. before the bundle is rewritten in place)."""
        if self._append_log is not None:
            self._append_log.close()
        self._append_log = None
        self._append_log_path = None

    def __getstate__(self):
        # fork/spawn workers get a read-only replica: journaling stays with
        # the parent process (an inherited file handle cannot be pickled)
        state = self.__dict__.copy()
        state["_append_log"] = None
        state["_append_log_path"] = None
        return state

    def _refresh_lengths(self) -> None:
        if self._lengths_dirty:
            self.collection.lengths = np.asarray(self._lengths, dtype=np.int64)
            self._lengths_dirty = False

    # ------------------------------------------------------------------ #
    # InvertedIndex protocol
    # ------------------------------------------------------------------ #
    def posting_lists(self, tokens: Sequence[int]) -> List[OnlineSortedIDList]:
        """Posting lists of the query tokens present in the index; duplicate
        tokens are collapsed (set semantics, as in the offline index)."""
        self._refresh_lengths()
        return [
            self.lists[token]
            for token in dict.fromkeys(tokens)
            if token in self.lists
        ]

    def size_bits(self) -> int:
        return sum(lst.size_bits() for lst in self.lists.values())

    def size_mb(self) -> float:
        return self.size_bits() / 8 / 1024 / 1024

    def num_postings(self) -> int:
        return sum(len(lst) for lst in self.lists.values())

    def compression_ratio(self) -> float:
        compressed = self.size_bits()
        if compressed == 0:
            return 1.0
        from ..compression.base import ELEMENT_BITS

        return ELEMENT_BITS * self.num_postings() / compressed

    def compact(self):
        """Seal every online list into offline CSS blocks (DP re-partition).

        Each compactable list is decoded once and re-partitioned with the
        paper's Algorithm-2 dynamic program, replacing whatever block
        boundaries the online seal policy happened to produce with the
        space-optimal offline ones — the index stays appendable and
        answers queries bit-identically.  Returns the
        :class:`~repro.storage.compaction.CompactionStats`.
        """
        from ..storage.compaction import compact_index

        return compact_index(self)
