"""Edit-distance similarity search (the AOL experiments of Chapter 7).

Signatures are distinct character q-grams.  The count filter uses the
destruction bound specialized to *set* semantics (the paper's inverted lists
store unique record ids): one edit operation touches at most ``q`` distinct
q-gram types of the query, so ``ed(r, s) <= delta`` implies the candidate
shares at least ``|Sig(r)| - q * delta`` of the query's q-gram types.

When the bound degenerates (short queries / loose thresholds) the searcher
falls back to the length filter — candidates are scanned from a
length-bucketed directory, mirroring how practical systems (e.g. Flamingo)
handle T <= 0.
"""

from __future__ import annotations

import time
from typing import Dict, List, Union

from ..obs import METRICS as _METRICS
from ..obs import trace_query as _trace_query
from ..similarity.edit_distance import within_edit_distance
from .base import CountFilterSearcher, QueryPlan
from .result import SearchResult, SearchStats
from .searcher import InvertedIndex

__all__ = ["EditDistanceSearcher", "normalize_delta"]


def normalize_delta(value: Union[int, float]) -> int:
    """An edit-distance threshold as a non-negative ``int``, strictly.

    Thresholds arrive as ``float | int`` everywhere (the CLI parses
    ``--ed 2`` as a float, engine callers pass either), and ``int(1.9)``
    silently meaning "1 edit" is always a user mistake — so a fractional
    value is rejected, never truncated.  Shared by the searchers and the
    CLI so both reject ``1.5`` identically.
    """
    if float(value) != int(value):
        raise ValueError(
            f"edit-distance thresholds must be integral, got {value}"
        )
    delta = int(value)
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return delta


class EditDistanceSearcher(CountFilterSearcher):
    """q-gram count-filter search for ``ed(query, record) <= delta``."""

    supports_plan_hooks = True

    def __init__(
        self,
        index: InvertedIndex,
        algorithm: str = "mergeskip",
        cache=None,
    ) -> None:
        if index.collection.mode != "qgram":
            raise ValueError(
                "edit-distance search requires a q-gram tokenized collection"
            )
        super().__init__(index, algorithm, cache=cache)
        self.q = index.collection.q
        # length directory for the T <= 0 fallback; rebuilt lazily when the
        # collection grows (dynamic indexes ingest between queries)
        self._by_length: Dict[int, List[int]] = {}
        self._directory_size = -1
        self._refresh_length_directory()

    def _refresh_length_directory(self) -> None:
        strings = self.index.collection.strings
        if len(strings) == self._directory_size:
            return
        # build into locals, then publish with two atomic assignments so a
        # concurrent reader (batch thread pool) never sees a half-built map
        by_length: Dict[int, List[int]] = {}
        for record_id, text in enumerate(strings):
            by_length.setdefault(len(text), []).append(record_id)
        self._by_length = by_length
        self._directory_size = len(strings)

    def _length_scan(self, query: str, delta: int) -> List[int]:
        self._refresh_length_directory()
        by_length = self._by_length
        candidates: List[int] = []
        for length in range(len(query) - delta, len(query) + delta + 1):
            candidates.extend(by_length.get(length, []))
        return sorted(candidates)

    def search(
        self, query: str, delta: Union[int, float]
    ) -> SearchResult:
        """Record ids with ``ed(query, record) <= delta``, ascending."""
        delta = normalize_delta(delta)
        with _trace_query(query, delta, kind="search.ed"):
            return self._search_traced(query, delta)

    def _plan(self, query: str, delta: Union[int, float]) -> QueryPlan:
        # the batched path enters here directly, bypassing search()
        delta = normalize_delta(delta)
        started = time.perf_counter()
        stats = SearchStats()
        collection = self.index.collection
        query_ids = collection.encode_query(query)
        signature_size = collection.signature_size(query)
        count_threshold = signature_size - self.q * delta
        stats.count_threshold = count_threshold
        plan = QueryPlan(
            query=query, threshold=delta, stats=stats, started=started
        )
        if count_threshold >= 1 and query_ids.size >= count_threshold:
            lists = self._probe_lists(query_ids.tolist())
            stats.lists_probed = len(lists)
            stats.postings_available = sum(len(lst) for lst in lists)
            plan.mode = "filter"
            plan.lists = lists
            plan.count_threshold = count_threshold
        elif count_threshold >= 1:
            # more unseen query grams than the bound tolerates: no record can
            # share count_threshold of the query's grams — plan stays "empty"
            pass
        else:
            # degenerate bound: fall back to the length filter
            with _METRICS.span("search.filter"):
                plan.direct_candidates = self._length_scan(query, delta)
            plan.mode = "direct"
        return plan

    def _verify(self, plan: QueryPlan, candidates: List[int]) -> List[int]:
        strings = self.index.collection.strings
        query = plan.query
        delta = plan.threshold
        stats = plan.stats
        results: List[int] = []
        for candidate in candidates:
            text = strings[candidate]
            if abs(len(text) - len(query)) > delta:
                continue
            stats.verifications += 1
            if within_edit_distance(query, text, delta):
                results.append(candidate)
        return results
