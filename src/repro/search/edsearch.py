"""Edit-distance similarity search (the AOL experiments of Chapter 7).

Signatures are distinct character q-grams.  The count filter uses the
destruction bound specialized to *set* semantics (the paper's inverted lists
store unique record ids): one edit operation touches at most ``q`` distinct
q-gram types of the query, so ``ed(r, s) <= delta`` implies the candidate
shares at least ``|Sig(r)| - q * delta`` of the query's q-gram types.

When the bound degenerates (short queries / loose thresholds) the searcher
falls back to the length filter — candidates are scanned from a
length-bucketed directory, mirroring how practical systems (e.g. Flamingo)
handle T <= 0.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..obs import METRICS as _METRICS
from ..similarity.edit_distance import within_edit_distance
from .searcher import InvertedIndex, SearchStats
from .toccurrence import divide_skip, merge_skip, scan_count

__all__ = ["EditDistanceSearcher"]

_ALGORITHMS = ("scancount", "mergeskip", "divideskip")


class EditDistanceSearcher:
    """q-gram count-filter search for ``ed(query, record) <= delta``."""

    def __init__(self, index: InvertedIndex, algorithm: str = "mergeskip") -> None:
        if index.collection.mode != "qgram":
            raise ValueError(
                "edit-distance search requires a q-gram tokenized collection"
            )
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
            )
        if algorithm != "scancount" and not index.supports_random_access:
            raise ValueError(
                f"scheme {index.scheme!r} supports only sequential decoding; "
                "use algorithm='scancount'"
            )
        self.index = index
        self.algorithm = algorithm
        self.q = index.collection.q
        self.last_stats = SearchStats()
        # length directory for the T <= 0 fallback; rebuilt lazily when the
        # collection grows (dynamic indexes ingest between queries)
        self._by_length: Dict[int, List[int]] = {}
        self._directory_size = -1
        self._refresh_length_directory()

    def _refresh_length_directory(self) -> None:
        strings = self.index.collection.strings
        if len(strings) == self._directory_size:
            return
        self._by_length = {}
        for record_id, text in enumerate(strings):
            self._by_length.setdefault(len(text), []).append(record_id)
        self._directory_size = len(strings)

    def _candidates(self, lists, threshold: int) -> np.ndarray:
        if self.algorithm == "scancount":
            return scan_count(lists, threshold, len(self.index.collection))
        if self.algorithm == "mergeskip":
            return merge_skip(lists, threshold)
        return divide_skip(lists, threshold)

    def _length_scan(self, query: str, delta: int) -> List[int]:
        self._refresh_length_directory()
        candidates: List[int] = []
        for length in range(len(query) - delta, len(query) + delta + 1):
            candidates.extend(self._by_length.get(length, []))
        return sorted(candidates)

    def search(self, query: str, delta: int) -> List[int]:
        """Record ids with ``ed(query, record) <= delta``, ascending."""
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        stats = SearchStats()
        self.last_stats = stats
        collection = self.index.collection
        strings = collection.strings
        query_ids = collection.encode_query(query)
        signature_size = collection.signature_size(query)
        count_threshold = signature_size - self.q * delta
        stats.count_threshold = count_threshold

        if count_threshold >= 1 and query_ids.size >= count_threshold:
            lists = self.index.posting_lists(query_ids.tolist())
            stats.lists_probed = len(lists)
            stats.postings_available = sum(len(lst) for lst in lists)
            with _METRICS.span("search.filter"):
                candidates = self._candidates(lists, count_threshold).tolist()
        elif count_threshold >= 1:
            # more unseen query grams than the bound tolerates: no record can
            # share count_threshold of the query's grams
            return []
        else:
            with _METRICS.span("search.filter"):
                candidates = self._length_scan(query, delta)
        stats.candidates = len(candidates)

        results: List[int] = []
        with _METRICS.span("search.verify"):
            for candidate in candidates:
                text = strings[candidate]
                if abs(len(text) - len(query)) > delta:
                    continue
                stats.verifications += 1
                if within_edit_distance(query, text, delta):
                    results.append(candidate)
        stats.results = len(results)
        if _METRICS.enabled:
            _METRICS.inc("search.queries")
            _METRICS.inc("search.candidates", stats.candidates)
            _METRICS.inc("search.verifications", stats.verifications)
            _METRICS.inc("search.results", stats.results)
        return results

    def search_many(self, queries: Sequence[str], delta: int) -> List[List[int]]:
        return [self.search(query, delta) for query in queries]
