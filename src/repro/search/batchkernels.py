"""Batch-native T-occurrence kernels: whole-query-batch ScanCount/MergeSkip.

The serial algorithms in :mod:`repro.search.toccurrence` run per-query,
per-cursor Python — heap pops and bit-field reads dominated the profile at
a few thousand QPS.  This module answers the *whole batch* with a handful
of numpy passes, the Python analog of the block-wise/SIMD decoding tricks
surveyed by Pibiri & Venturini and of the paper's §6.2.2 k-ary layout:

* :func:`batch_scan_count` — one concatenated accumulation over every
  query's posting ids, keyed ``query_idx * universe + record_id`` so a
  single ``np.bincount`` counts all queries at once, followed by one
  vectorized per-query threshold test against the length-bound-derived
  ``T`` values.
* :func:`batch_merge_skip` — a data-parallel MergeSkip.  All cursors of
  all queries live in one padded matrix over a shared decoded arena; each
  round finds every query's T-th-smallest frontier with one sort, emits
  the rows whose minimum reaches it, and advances **every** lagging cursor
  in the batch through one :func:`~repro.compression.simdsearch.\
kary_lower_bound_many` call — one vector pass per binary-search level,
  exactly the skip structure of Li et al.'s MergeSkip.

Both kernels are exact: for every query they return the same candidate set,
in the same ascending order, as the serial algorithm — the serial per-query
path stays in the tree as the parity oracle (``tests/test_parity_fuzz.py``).

Decode discipline: each distinct posting list is decoded **once per batch**
(:func:`decode_postings`), through the engine's
:class:`~repro.engine.cache.DecodeCache` when one is configured, and the
two-layer decode itself batches all touched blocks into a single gather
(:meth:`~repro.compression.twolayer.TwoLayerStore.decode_blocks`) — decode
cost is paid once per touched block, never once per cursor touch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.simdsearch import kary_lower_bound_many
from ..obs import METRICS as _METRICS

__all__ = [
    "BATCH_ALGORITHMS",
    "decode_postings",
    "batch_scan_count",
    "batch_merge_skip",
    "batch_candidates",
]

#: algorithms with a batch-native kernel; DivideSkip keeps its per-query
#: long/short re-verification structure and stays on the serial path.
BATCH_ALGORITHMS = ("scancount", "mergeskip")

_INF = np.iinfo(np.int64).max

#: cap on the (queries x universe) counter matrix one ScanCount chunk
#: materializes; larger batches split into query chunks under the same key
#: scheme, so memory stays bounded while every chunk is one bincount.
SCANCOUNT_CELL_BUDGET = 1 << 23


def decode_postings(
    lists: Sequence,
    cache=None,
    memo: Optional[Dict[int, np.ndarray]] = None,
) -> List[np.ndarray]:
    """Decoded id arrays for ``lists``, each distinct list decoded once.

    ``memo`` (shared across the queries of one batch) maps list identity to
    its decoded array, so a posting list probed by many queries in the
    batch decodes a single time.  With a
    :class:`~repro.engine.cache.DecodeCache` supplied the decode goes
    through ``cache.fetch`` and is shared with later batches too.
    """
    if memo is None:
        memo = {}
    arrays: List[np.ndarray] = []
    for lst in lists:
        inner = getattr(lst, "inner", lst)  # unwrap a CachedListView
        key = id(inner)
        array = memo.get(key)
        if array is None:
            if getattr(lst, "cached", False):
                # repro: noqa RA01 -- served from the view's cached decode
                array = lst.to_array()
            elif cache is not None:
                array = cache.fetch(inner)
            else:
                # no cache configured: the per-batch memo is the cache
                # repro: noqa RA01 -- one decode per distinct list per batch
                array = inner.to_array()
            memo[key] = array
        arrays.append(array)
    return arrays


def _validate_thresholds(thresholds: np.ndarray, batch: int) -> None:
    if thresholds.size != batch:
        raise ValueError(
            f"expected {batch} thresholds, got {thresholds.size}"
        )
    if thresholds.size and int(thresholds.min()) < 1:
        raise ValueError("thresholds must be >= 1")


def batch_scan_count(
    per_query_arrays: Sequence[Sequence[np.ndarray]],
    thresholds: Sequence[int],
    universe: int,
) -> List[np.ndarray]:
    """Whole-batch ScanCount: one id accumulation answers every query.

    ``per_query_arrays[i]`` holds query *i*'s decoded posting lists and
    ``thresholds[i]`` its T value.  Ids are keyed
    ``row * width + record_id`` (``width`` covers both ``universe`` and the
    largest posted id, so an index grown past its build-time universe stays
    in bounds) and counted by a single ``np.bincount`` per chunk; the
    threshold test compares each row's counts against its own T in one
    broadcast.  Returns one ascending candidate array per query.
    """
    thresholds = np.asarray(thresholds, dtype=np.int64)
    batch = len(per_query_arrays)
    _validate_thresholds(thresholds, batch)
    out: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * batch
    live: List[int] = []
    max_id = -1
    for row in range(batch):
        arrays = per_query_arrays[row]
        if not arrays or len(arrays) < int(thresholds[row]):
            continue
        populated = False
        for ids in arrays:
            if ids.size:
                populated = True
                max_id = max(max_id, int(ids[-1]))
        if populated:
            live.append(row)
    if not live:
        return out
    width = max(int(universe), max_id + 1)
    rows_per_chunk = max(1, SCANCOUNT_CELL_BUDGET // max(width, 1))
    scanned = 0
    for start in range(0, len(live), rows_per_chunk):
        chunk = live[start : start + rows_per_chunk]
        key_parts: List[np.ndarray] = []
        for local, row in enumerate(chunk):
            offset = local * width
            for ids in per_query_arrays[row]:
                if ids.size:
                    key_parts.append(ids + offset)
        keys = np.concatenate(key_parts)
        scanned += int(keys.size)
        counts = np.bincount(keys, minlength=len(chunk) * width).reshape(
            len(chunk), width
        )
        chunk_thresholds = thresholds[np.asarray(chunk, dtype=np.int64)]
        hit_rows, hit_ids = np.nonzero(counts >= chunk_thresholds[:, None])
        boundaries = np.searchsorted(hit_rows, np.arange(len(chunk) + 1))
        for local, row in enumerate(chunk):
            out[row] = hit_ids[boundaries[local] : boundaries[local + 1]]
    if _METRICS.enabled:
        _METRICS.inc("batchkernel.scancount_queries", len(live))
        _METRICS.inc("batchkernel.postings_scanned", scanned)
    return out


def batch_merge_skip(
    per_query_arrays: Sequence[Sequence[np.ndarray]],
    thresholds: Sequence[int],
) -> List[np.ndarray]:
    """Data-parallel MergeSkip over every query's cursors at once.

    All posting lists of all queries are laid out in one arena; each query
    row keeps a padded vector of (segment, position) cursors.  Per round:

    1. gather every frontier value with one fancy-index read,
    2. per-row sort yields the minimum and the T-th smallest (the *pivot*),
    3. rows whose minimum equals the pivot have >= T cursors parked on it —
       emit the value (Li et al.'s match case),
    4. every cursor below its row's skip target (``min+1`` on a match, the
       pivot otherwise) seeks forward via one
       :func:`kary_lower_bound_many` call bounded to its own segment — all
       skip jumps in the batch advance together, one vector pass per
       binary-search level.

    Rows drop out when fewer than T cursors remain, exactly like the serial
    heap draining below the threshold.  Returns ascending candidate arrays
    identical to :func:`repro.search.toccurrence.merge_skip` per query.
    """
    thresholds = np.asarray(thresholds, dtype=np.int64)
    batch = len(per_query_arrays)
    _validate_thresholds(thresholds, batch)
    out: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * batch
    row_ids: List[int] = []
    row_arrays: List[List[np.ndarray]] = []
    for row in range(batch):
        arrays = [ids for ids in per_query_arrays[row] if ids.size]
        if len(arrays) >= int(thresholds[row]):
            row_ids.append(row)
            row_arrays.append(arrays)
    if not row_ids:
        return out

    flat = [ids for arrays in row_arrays for ids in arrays]
    arena = np.concatenate(flat)
    sizes = np.asarray([ids.size for ids in flat], dtype=np.int64)
    flat_starts = np.cumsum(sizes) - sizes

    num_rows = len(row_ids)
    num_cols = max(len(arrays) for arrays in row_arrays)
    sstart = np.zeros((num_rows, num_cols), dtype=np.int64)
    slen = np.zeros((num_rows, num_cols), dtype=np.int64)
    cursor = 0
    for r, arrays in enumerate(row_arrays):
        for c, ids in enumerate(arrays):
            sstart[r, c] = flat_starts[cursor]
            slen[r, c] = sizes[cursor]
            cursor += 1
    pos = np.zeros((num_rows, num_cols), dtype=np.int64)
    rows = np.asarray(row_ids, dtype=np.int64)
    T = thresholds[rows]

    emitted_rows: List[np.ndarray] = []
    emitted_vals: List[np.ndarray] = []
    rounds = 0
    seeks = 0
    while rows.size:
        active = pos < slen
        alive = active.sum(axis=1) >= T
        if not alive.all():
            # a row below T live cursors can answer nothing further
            rows, pos, sstart, slen, T = (
                rows[alive],
                pos[alive],
                sstart[alive],
                slen[alive],
                T[alive],
            )
            continue
        rounds += 1
        absidx = sstart + pos
        val = np.where(active, arena[np.where(active, absidx, 0)], _INF)
        sorted_vals = np.sort(val, axis=1)
        minv = sorted_vals[:, 0]
        pivot = sorted_vals[np.arange(rows.size), T - 1]
        emit = pivot == minv
        if emit.any():
            emitted_rows.append(rows[emit])
            emitted_vals.append(minv[emit])
        # match rows advance their parked cursors past the emitted value;
        # skip rows jump everything below the pivot up to it
        target = np.where(emit, minv + 1, pivot)
        move = val < target[:, None]
        move_rows = np.nonzero(move)[0]
        keys = target[move_rows]
        seeks += int(keys.size)
        landed = kary_lower_bound_many(
            arena, keys, lo=absidx[move], hi=(sstart + slen)[move]
        )
        pos[move] = landed - sstart[move]
    if _METRICS.enabled:
        _METRICS.inc("batchkernel.mergeskip_queries", len(row_ids))
        _METRICS.inc("batchkernel.rounds", rounds)
        _METRICS.inc("batchkernel.skip_jumps", seeks)

    if emitted_rows:
        rows_cat = np.concatenate(emitted_rows)
        vals_cat = np.concatenate(emitted_vals)
        # stable by row: per-row emit order is ascending by construction
        # (each round's emitted minimum strictly increases)
        order = np.argsort(rows_cat, kind="stable")
        rows_sorted = rows_cat[order]
        vals_sorted = vals_cat[order]
        breaks = np.nonzero(np.diff(rows_sorted))[0] + 1
        for row_chunk, val_chunk in zip(
            np.split(rows_sorted, breaks), np.split(vals_sorted, breaks)
        ):
            out[int(row_chunk[0])] = val_chunk
    return out


def batch_candidates(
    algorithm: str,
    per_query_arrays: Sequence[Sequence[np.ndarray]],
    thresholds: Sequence[int],
    universe: int,
) -> List[np.ndarray]:
    """Dispatch one batch of T-occurrence problems to the named kernel."""
    if algorithm == "scancount":
        return batch_scan_count(per_query_arrays, thresholds, universe)
    if algorithm == "mergeskip":
        return batch_merge_skip(per_query_arrays, thresholds)
    raise ValueError(
        f"algorithm must be one of {BATCH_ALGORITHMS}, got {algorithm!r}"
    )
