"""Frozen search outcomes: :class:`SearchStats` and :class:`SearchResult`.

The original searchers reported their filtering counters by mutating a
``last_stats`` attribute after every query (a surface since removed) —
fine for a single-threaded loop,
racy the moment queries run concurrently (the batched engine interleaves
queries over one searcher).  The redesigned API returns everything about a
query in one immutable :class:`SearchResult`; nothing the caller receives
can be clobbered by the next query.

``SearchResult`` is a :class:`~collections.abc.Sequence` over the matching
record ids and compares equal to a plain list/tuple of ids, so code (and
tests) written against the old ``search() -> List[int]`` contract keeps
working unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import List, Tuple, Union

import numpy as np

__all__ = ["SearchStats", "SearchResult"]


@dataclass
class SearchStats:
    """Filter-and-verification counters for one query.

    The filtering-power lens of the paper's evaluation: how many posting
    lists were probed, how many candidates survived the count filter, how
    many reached exact verification, how many answered.
    """

    lists_probed: int = 0
    postings_available: int = 0
    candidates: int = 0
    verifications: int = 0
    results: int = 0
    count_threshold: int = 0


@dataclass(frozen=True, eq=False)
class SearchResult(Sequence):
    """Immutable outcome of one ``search()`` call.

    Fields: the ``query`` and ``threshold`` it answered, the matching
    record ``ids`` (ascending tuple), the per-query :class:`SearchStats`,
    and the wall-clock ``seconds`` the query took.

    Equality compares the ids only — against another result or against any
    plain sequence of ids — which keeps the pre-redesign list contract.
    """

    query: str
    threshold: float
    ids: Tuple[int, ...]
    stats: SearchStats = field(repr=False)
    seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # sequence protocol over the ids
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(self, index: Union[int, slice]):
        return self.ids[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, SearchResult):
            return self.ids == other.ids
        if isinstance(other, (list, tuple, np.ndarray)):
            return list(self.ids) == [int(x) for x in other]
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.ids)

    def to_list(self) -> List[int]:
        """The ids as a plain (mutable) list."""
        return list(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = list(self.ids[:8])
        suffix = ", ..." if len(self.ids) > 8 else ""
        return (
            f"<SearchResult query={self.query!r} threshold={self.threshold} "
            f"hits={len(self.ids)} [{preview}{suffix}] "
            f"{1000 * self.seconds:.2f} ms>"
        )
