"""Array-level helpers shared by every on-disk index format.

The bundle formats (:mod:`repro.storage.bundle`,
:mod:`repro.storage.sharded`) and the legacy ``.npz`` format
(:mod:`repro.storage.legacy`) all reduce a two-layer store to the same
named arrays (:func:`repro.compression.serialize.store_to_arrays`).  This
module holds the pieces they share: the corruption-error builder that
names the offending *file* and *array key* (not just a token), the
store-array consistency validator, and the reconstituted list wrapper.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..compression.constants import MAX_DELTA_WIDTH
from ..compression.twolayer import TwoLayerList, TwoLayerStore
from ..compression.uncompressed import UncompressedList

__all__ = [
    "corruption_error",
    "require",
    "validate_store_arrays",
    "LoadedTwoLayerList",
    "LoadedUncompressedList",
]

_Context = Union[str, "object", None]


def corruption_error(
    what: str,
    *,
    file: Optional[object] = None,
    key: Optional[str] = None,
    token: Optional[int] = None,
) -> ValueError:
    """A load-time integrity error that names where the corruption sits.

    ``file`` is the container path (``None`` for in-memory arrays), ``key``
    the offending array inside it, ``token`` the list the extent belongs
    to.  Every loader funnels through here so a failed ``repro check`` or
    ``open()`` pinpoints the byte range to inspect instead of reporting a
    bare token id.
    """
    parts = ["corrupted index file"]
    if file is not None:
        parts.append(str(file))
    message = " ".join(parts)
    if key is not None:
        message += f": array {key!r}"
    if token is not None:
        message += f": list for token {token}"
    return ValueError(f"{message}: {what}")


def require(
    condition: bool,
    what: str,
    *,
    file: Optional[object] = None,
    key: Optional[str] = None,
    token: Optional[int] = None,
) -> None:
    if not condition:
        raise corruption_error(what, file=file, key=key, token=token)


def validate_store_arrays(
    arrays: Dict[str, np.ndarray],
    token: Optional[int] = None,
    *,
    file: Optional[object] = None,
    directory: Optional[object] = None,
) -> None:
    """Cheap consistency checks before trusting on-disk extents.

    A truncated or bit-flipped container must fail loudly at load time,
    not return garbage ids from a later ``gather``: block starts must be a
    monotone prefix-count ramp, every block's packed deltas must lie
    inside the data words, and widths must be in the encoder's [1, 32]
    range.  Violations name the file and the array key they were found in.

    ``file`` is a single container holding every array (the legacy
    ``.npz``); ``directory`` is a bundle directory, where each array key
    lives in its own ``<key>.npy`` — violations are attributed to the
    failing key's file.
    """

    def _file(key: str) -> Optional[object]:
        if directory is None:
            return file
        return directory / f"{key.split('/')[0]}.npy"  # type: ignore[operator]

    bases = arrays["bases"]
    offsets = arrays["offsets"]
    widths = arrays["widths"]
    starts = arrays["starts"]
    num_bits = int(arrays["num_bits"][0])
    require(
        bases.size == offsets.size == widths.size,
        "metadata arrays disagree on block count",
        file=_file("bases/offsets/widths"),
        key="bases/offsets/widths",
        token=token,
    )
    require(
        starts.size == bases.size + 1,
        "starts/blocks mismatch",
        file=_file("starts"),
        key="starts",
        token=token,
    )
    require(
        starts.size >= 1 and int(starts[0]) == 0,
        "starts[0] != 0",
        file=_file("starts"),
        key="starts",
        token=token,
    )
    counts = np.diff(starts)
    require(
        counts.size == 0 or int(counts.min()) >= 1,
        "non-positive block size",
        file=_file("starts"),
        key="starts",
        token=token,
    )
    require(
        0 <= num_bits <= 64 * int(arrays["words"].size),
        "num_bits exceeds stored data words",
        file=_file("words"),
        key="words",
        token=token,
    )
    if bases.size:
        require(
            int(widths.min()) >= 1 and int(widths.max()) <= MAX_DELTA_WIDTH,
            f"delta width outside [1, {MAX_DELTA_WIDTH}]",
            file=_file("widths"),
            key="widths",
            token=token,
        )
        require(
            int(bases.min()) >= 0,
            "negative base value",
            file=_file("bases"),
            key="bases",
            token=token,
        )
        require(
            int(offsets.min()) >= 0,
            "negative data offset",
            file=_file("offsets"),
            key="offsets",
            token=token,
        )
        # every block's packed deltas must end within the data region
        ends = offsets + widths * (counts - 1)
        require(
            int(ends.max()) <= num_bits,
            "block data extends past num_bits",
            file=_file("offsets"),
            key="offsets",
            token=token,
        )


class LoadedTwoLayerList(TwoLayerList):
    """A two-layer list reconstituted from disk (partitioning preserved)."""

    def __init__(self, store: TwoLayerStore, scheme_name: str) -> None:
        # bypass TwoLayerList.__init__: the store is already built
        self._store = store
        self.scheme_name = scheme_name


class LoadedUncompressedList(UncompressedList):
    """An uncompressed list whose values *are* the caller's array.

    Bypasses the copying/validating constructor so a memory-mapped bundle
    slice serves reads straight off the page cache; the bundle loader has
    already validated extents, and ``repro check`` re-validates contents.
    """

    def __init__(self, values: np.ndarray) -> None:
        self._values = values
