"""The directory-bundle index format: mmap-able, self-contained, appendable.

One bundle directory holds everything an engine needs to come back up —
``manifest.json``, the consolidated posting-list arrays as *plain* ``.npy``
files (the legacy ``.npz`` is a zip archive, which numpy cannot
memory-map), and the tokenized collection (strings, dictionary in id
order, per-record token arrays).  Two layouts share the container:

* **static** (``"dynamic": false``) — an offline
  :class:`~repro.search.searcher.InvertedIndex`.  Opened with
  ``mmap=True`` every array is ``np.load(..., mmap_mode='r')`` and the
  per-list stores are zero-copy
  :class:`~repro.compression.twolayer.FrozenTwoLayerStore` views, so N
  fork workers (or N processes opening the same bundle) share one on-disk
  copy of the posting-list payloads through the page cache.
* **dynamic** (``"dynamic": true``) — a snapshot of a
  :class:`~repro.search.dynamic.DynamicInvertedIndex` (compressed region
  *and* uncompressed buffer per list, saved state-exactly) plus a JSONL
  **append log**: every ``add()`` after the snapshot is journaled, and
  ``open()`` replays the log before re-arming it, so an ingesting service
  survives restarts without re-snapshotting per record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from ..compression.online import OnlineSortedIDList
from ..compression.serialize import store_from_arrays, store_to_arrays
from ..compression.twolayer import TwoLayerList
from ..compression.uncompressed import UncompressedList
from ..obs import METRICS as _METRICS
from ..similarity.tokenize import TokenDictionary, TokenizedCollection
from .arrays import (
    LoadedTwoLayerList,
    LoadedUncompressedList,
    corruption_error,
    require,
    validate_store_arrays,
)

__all__ = [
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
    "LOG_NAME",
    "save_index",
    "open_index",
    "read_bundle_manifest",
]

BUNDLE_KIND = "repro.index_bundle"
BUNDLE_VERSION = 1
MANIFEST_NAME = "manifest.json"
LOG_NAME = "log.jsonl"

_KIND_TWOLAYER = 0
_KIND_UNCOMP = 1

# every consolidated array in the bundle, with its required dtype
_ARRAY_DTYPES = {
    "tokens": np.int64,
    "kinds": np.uint8,
    "block_counts": np.int64,
    "start_counts": np.int64,
    "word_counts": np.int64,
    "bit_counts": np.int64,
    "uncomp_counts": np.int64,
    "bases": np.int64,
    "offsets": np.int64,
    "widths": np.int64,
    "starts": np.int64,
    "words": np.uint64,
    "uncomp_values": np.int64,
    "records_values": np.int64,
    "records_offsets": np.int64,
}
_DYNAMIC_ARRAY_DTYPES = {
    "buffer_counts": np.int64,
    "buffer_values": np.int64,
}


def read_bundle_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and sanity-check ``manifest.json`` of an index bundle."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not an index bundle (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("kind") != BUNDLE_KIND:
        raise ValueError(
            f"{manifest_path} is not a {BUNDLE_KIND} manifest "
            f"(kind={manifest.get('kind')!r})"
        )
    if manifest.get("version") != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported index bundle version {manifest.get('version')} "
            f"in {manifest_path}"
        )
    return manifest


# ---------------------------------------------------------------------- #
# save
# ---------------------------------------------------------------------- #
def _collect_store_arrays(
    items: List,
) -> Dict[str, np.ndarray]:
    """Consolidate (token, kind, store-or-values[, buffer]) rows into the
    bundle's flat arrays."""
    tokens: List[int] = []
    kinds: List[int] = []
    bases, offsets, widths, starts = [], [], [], []
    block_counts, start_counts = [], []
    word_chunks, word_counts, bit_counts = [], [], []
    uncomp_values, uncomp_counts = [], []
    for token, kind, payload in items:
        tokens.append(int(token))
        kinds.append(kind)
        if kind == _KIND_TWOLAYER:
            arrays = store_to_arrays(payload)
            bases.append(arrays["bases"])
            offsets.append(arrays["offsets"])
            widths.append(arrays["widths"])
            starts.append(arrays["starts"])
            block_counts.append(arrays["bases"].size)
            start_counts.append(arrays["starts"].size)
            word_chunks.append(arrays["words"])
            word_counts.append(arrays["words"].size)
            bit_counts.append(int(arrays["num_bits"][0]))
        else:
            values = np.asarray(payload, dtype=np.int64)
            uncomp_values.append(values)
            uncomp_counts.append(values.size)

    def _concat(chunks: List[np.ndarray], dtype: type) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(chunks).astype(dtype)

    return {
        "tokens": np.asarray(tokens, dtype=np.int64),
        "kinds": np.asarray(kinds, dtype=np.uint8),
        "block_counts": np.asarray(block_counts, dtype=np.int64),
        "start_counts": np.asarray(start_counts, dtype=np.int64),
        "word_counts": np.asarray(word_counts, dtype=np.int64),
        "bit_counts": np.asarray(bit_counts, dtype=np.int64),
        "uncomp_counts": np.asarray(uncomp_counts, dtype=np.int64),
        "bases": _concat(bases, np.int64),
        "offsets": _concat(offsets, np.int64),
        "widths": _concat(widths, np.int64),
        "starts": _concat(starts, np.int64),
        "words": _concat(word_chunks, np.uint64),
        "uncomp_values": _concat(uncomp_values, np.int64),
    }


def _collection_arrays(collection: Any) -> Dict[str, np.ndarray]:
    offsets = np.zeros(len(collection.records) + 1, dtype=np.int64)
    if collection.records:
        offsets[1:] = np.cumsum(
            [record.size for record in collection.records], dtype=np.int64
        )
        values = np.concatenate(
            [np.asarray(r, dtype=np.int64) for r in collection.records]
        )
    else:
        values = np.empty(0, dtype=np.int64)
    return {"records_values": values, "records_offsets": offsets}


def _write_collection_json(path: Path, collection: Any) -> None:
    (path / "strings.json").write_text(
        json.dumps(collection.strings), encoding="utf-8"
    )
    dictionary = collection.dictionary
    (path / "dictionary.json").write_text(
        json.dumps(
            {
                "tokens": [
                    dictionary.token_of(i) for i in range(len(dictionary))
                ],
                "frequencies": [
                    dictionary.frequency_of(i) for i in range(len(dictionary))
                ],
            }
        ),
        encoding="utf-8",
    )


def _prepare_directory(path: Union[str, Path]) -> Path:
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{path} exists and is not a directory (bundles are directories; "
            "use a .npz path for the legacy monolithic format)"
        )
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_index(index: Any, path: Union[str, Path]) -> Path:
    """Persist any supported index to a bundle directory at ``path``.

    Dispatches on the index's nature: offline
    :class:`~repro.search.searcher.InvertedIndex` objects produce a static
    bundle, :class:`~repro.search.dynamic.DynamicInvertedIndex` objects a
    dynamic snapshot with a fresh (empty) append log, armed on the live
    index so subsequent ``add()``s land in the bundle.  Returns ``path``.
    """
    from ..search.dynamic import DynamicInvertedIndex

    with _METRICS.span("storage.save"):
        if isinstance(index, DynamicInvertedIndex):
            result = _save_dynamic(index, path)
        else:
            result = _save_static(index, path)
    if _METRICS.enabled:
        _METRICS.inc("storage.saves")
    return result


def _save_arrays(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    for key, array in arrays.items():
        np.save(path / f"{key}.npy", array)


def _save_static(index: Any, path: Union[str, Path]) -> Path:
    if any(
        isinstance(lst, OnlineSortedIDList) for lst in index.lists.values()
    ):
        raise ValueError(
            "index has online (two-region) lists but is not a "
            "DynamicInvertedIndex; cannot choose a bundle layout for it"
        )
    items = []
    for token, lst in index.lists.items():
        if isinstance(lst, TwoLayerList):
            items.append((token, _KIND_TWOLAYER, lst.store))
        elif isinstance(lst, UncompressedList):
            items.append((token, _KIND_UNCOMP, lst.to_array()))
        else:
            raise TypeError(
                f"cannot serialize scheme {type(lst).__name__}; only "
                "two-layer (MILC/CSS) and uncompressed lists are persistent"
            )
    path = _prepare_directory(path)
    collection = index.collection
    manifest = {
        "kind": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "dynamic": False,
        "scheme": index.scheme,
        "mode": collection.mode,
        "q": int(collection.q),
        "num_records": len(collection),
        "num_lists": len(index.lists),
    }
    _save_arrays(path, _collect_store_arrays(items))
    _save_arrays(path, _collection_arrays(collection))
    _write_collection_json(path, collection)
    # stale logs from an earlier dynamic bundle at this path must not be
    # replayed into a static index
    (path / LOG_NAME).unlink(missing_ok=True)
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return path


def _save_dynamic(index: Any, path: Union[str, Path]) -> Path:
    # a live log pointing into this bundle must be released before the
    # snapshot overwrites it
    index.detach_append_log()
    items = []
    buffer_counts: List[int] = []
    buffer_chunks: List[np.ndarray] = []
    for token, lst in index.lists.items():
        items.append((token, _KIND_TWOLAYER, lst.store))
        tail = lst.buffer_values()
        buffer_counts.append(int(tail.size))
        buffer_chunks.append(tail)
    path = _prepare_directory(path)
    collection = index.collection
    index._refresh_lengths()
    manifest = {
        "kind": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "dynamic": True,
        "scheme": index.scheme,
        "scheme_kwargs": index._scheme_kwargs,
        "mode": index.mode,
        "q": int(index.q),
        "num_records": len(collection),
        "num_lists": len(index.lists),
    }
    _save_arrays(path, _collect_store_arrays(items))
    _save_arrays(
        path,
        {
            "buffer_counts": np.asarray(buffer_counts, dtype=np.int64),
            "buffer_values": (
                np.concatenate(buffer_chunks).astype(np.int64)
                if buffer_chunks
                else np.empty(0, dtype=np.int64)
            ),
        },
    )
    _save_arrays(path, _collection_arrays(collection))
    _write_collection_json(path, collection)
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    # fresh snapshot: the log restarts empty, journaling from here on
    log_path = path / LOG_NAME
    log_path.write_text("", encoding="utf-8")
    index.attach_append_log(log_path)
    return path


# ---------------------------------------------------------------------- #
# open
# ---------------------------------------------------------------------- #
def _load_arrays(
    path: Path, names: Dict[str, type], *, mmap: bool
) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    total_bytes = 0
    for key, dtype in names.items():
        file = path / f"{key}.npy"
        if not file.is_file():
            raise corruption_error("array file is missing", file=file, key=key)
        try:
            array = np.load(file, mmap_mode="r" if mmap else None)
        except Exception as error:  # repro: noqa RA07 -- numpy raises a
            # zoo of types for bad .npy headers; re-raise with the file named
            raise corruption_error(
                f"unreadable .npy file ({error})", file=file, key=key
            ) from error
        require(
            array.dtype == dtype,
            f"expected dtype {np.dtype(dtype).name}, found {array.dtype}",
            file=file,
            key=key,
        )
        require(
            array.ndim == 1,
            f"expected a 1-d array, found shape {array.shape}",
            file=file,
            key=key,
        )
        # downcast np.memmap to a plain ndarray view over the same mapping:
        # every per-list/per-record slice below would otherwise run memmap's
        # __array_finalize__ and allocate a heavyweight memmap instance —
        # tens of thousands of them cost more memory than the index itself.
        # The view's .base keeps the mapping (and the file) alive.
        arrays[key] = array.view(np.ndarray) if mmap else array
        total_bytes += int(array.nbytes)
    if _METRICS.enabled:
        _METRICS.inc(
            "storage.bytes_mapped" if mmap else "storage.bytes_resident",
            total_bytes,
        )
    return arrays


def _load_collection(
    path: Path, manifest: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> TokenizedCollection:
    strings_path = path / "strings.json"
    dictionary_path = path / "dictionary.json"
    for file in (strings_path, dictionary_path):
        if not file.is_file():
            raise corruption_error("collection file is missing", file=file)
    strings = json.loads(strings_path.read_text(encoding="utf-8"))
    saved = json.loads(dictionary_path.read_text(encoding="utf-8"))
    dictionary = TokenDictionary.from_id_order(
        saved["tokens"], saved["frequencies"]
    )
    values = arrays["records_values"]
    offsets = arrays["records_offsets"]
    require(
        offsets.size == len(strings) + 1,
        f"{offsets.size} record offsets for {len(strings)} strings",
        file=path / "records_offsets.npy",
        key="records_offsets",
    )
    require(
        offsets.size >= 1
        and int(offsets[0]) == 0
        and int(offsets[-1]) == values.size
        and (offsets.size < 2 or bool(np.all(np.diff(offsets) >= 0))),
        "record offsets are not a monotone ramp over records_values",
        file=path / "records_offsets.npy",
        key="records_offsets",
    )
    records = [
        values[int(offsets[i]) : int(offsets[i + 1])]
        for i in range(len(strings))
    ]
    return TokenizedCollection(
        strings=strings,
        records=records,
        dictionary=dictionary,
        mode=manifest["mode"],
        q=int(manifest["q"]),
    )


def _iter_list_arrays(path: Path, arrays: Dict[str, np.ndarray]):
    """Yield ``(position, token, kind, store_arrays_or_values)`` per list,
    validating the consolidated extents exactly like the legacy loader."""
    tokens = arrays["tokens"]
    kinds = arrays["kinds"]
    block_counts = arrays["block_counts"]
    start_counts = arrays["start_counts"]
    word_counts = arrays["word_counts"]
    bit_counts = arrays["bit_counts"]
    uncomp_counts = arrays["uncomp_counts"]
    bases, offsets = arrays["bases"], arrays["offsets"]
    widths, starts = arrays["widths"], arrays["starts"]
    words, uncomp_values = arrays["words"], arrays["uncomp_values"]

    num_twolayer = int((kinds == _KIND_TWOLAYER).sum())
    num_uncomp = int(kinds.size - num_twolayer)
    require(
        tokens.size == kinds.size,
        "tokens/kinds mismatch",
        file=path / "kinds.npy",
        key="kinds",
    )
    require(
        block_counts.size == num_twolayer
        and start_counts.size == num_twolayer
        and word_counts.size == num_twolayer
        and bit_counts.size == num_twolayer
        and uncomp_counts.size == num_uncomp,
        "per-list count arrays disagree with the token listing",
        file=path / "block_counts.npy",
        key="block_counts/start_counts/word_counts/bit_counts",
    )
    # each consolidated array must be exactly as long as the per-list
    # counts claim; a mismatch names the one file that disagrees
    for key, array, expected in (
        ("bases", bases, int(block_counts.sum())),
        ("offsets", offsets, int(block_counts.sum())),
        ("widths", widths, int(block_counts.sum())),
        ("starts", starts, int(start_counts.sum())),
        ("words", words, int(word_counts.sum())),
        ("uncomp_values", uncomp_values, int(uncomp_counts.sum())),
    ):
        require(
            array.size == expected,
            "consolidated array extent disagrees with the per-list counts",
            file=path / f"{key}.npy",
            key=key,
        )

    b = s = w = u = 0
    twolayer_seen = 0
    for position, token in enumerate(tokens.tolist()):
        if kinds[position] == _KIND_TWOLAYER:
            nb = int(block_counts[twolayer_seen])
            ns = int(start_counts[twolayer_seen])
            nw = int(word_counts[twolayer_seen])
            store_arrays = {
                "bases": bases[b : b + nb],
                "offsets": offsets[b : b + nb],
                "widths": widths[b : b + nb],
                "starts": starts[s : s + ns],
                "words": words[w : w + nw],
                "num_bits": np.asarray(
                    [bit_counts[twolayer_seen]], dtype=np.int64
                ),
            }
            validate_store_arrays(store_arrays, token, directory=path)
            yield position, token, _KIND_TWOLAYER, store_arrays
            b += nb
            s += ns
            w += nw
            twolayer_seen += 1
        else:
            count = int(uncomp_counts[position - twolayer_seen])
            require(
                count >= 0 and u + count <= uncomp_values.size,
                "uncompressed extent out of range",
                file=path / "uncomp_values.npy",
                key="uncomp_values",
                token=token,
            )
            yield position, token, _KIND_UNCOMP, uncomp_values[u : u + count]
            u += count


def open_index(path: Union[str, Path], *, mmap: bool = True) -> Any:
    """Reconstitute the index saved in the bundle at ``path``.

    Static bundles honor ``mmap``: ``True`` (the default) serves every
    posting-list payload zero-copy off the memory-mapped files; ``False``
    materializes an appendable in-memory copy.  Dynamic bundles are always
    eager — an appendable index cannot alias read-only pages — and replay
    the append log before re-arming it.
    """
    path = Path(path)
    manifest = read_bundle_manifest(path)
    with _METRICS.span("storage.open"):
        if manifest.get("dynamic"):
            index = _open_dynamic(path, manifest)
        else:
            index = _open_static(path, manifest, mmap=mmap)
    if _METRICS.enabled:
        _METRICS.inc("storage.opens")
    return index


def _open_static(path: Path, manifest: Dict[str, Any], *, mmap: bool) -> Any:
    from ..search.searcher import InvertedIndex

    arrays = _load_arrays(path, _ARRAY_DTYPES, mmap=mmap)
    collection = _load_collection(path, manifest, arrays)
    require(
        len(collection) == int(manifest["num_records"]),
        f"manifest says {manifest['num_records']} records, bundle holds "
        f"{len(collection)}",
        file=path / MANIFEST_NAME,
    )
    index = InvertedIndex.__new__(InvertedIndex)
    index.collection = collection
    index.scheme = manifest["scheme"]
    index.build_seconds = 0.0
    index.lists = {}
    for _, token, kind, payload in _iter_list_arrays(path, arrays):
        if kind == _KIND_TWOLAYER:
            index.lists[token] = LoadedTwoLayerList(
                store_from_arrays(payload, copy=not mmap), manifest["scheme"]
            )
        elif mmap:
            index.lists[token] = LoadedUncompressedList(payload)
        else:
            index.lists[token] = UncompressedList(payload)
    index.supports_random_access = all(
        lst.supports_random_access for lst in index.lists.values()
    )
    return index


def _replay_log(path: Path, index: Any, snapshot_records: int) -> int:
    """Replay (and validate) the append log; returns replayed record count.

    Every line must parse as ``{"seq": int, "text": str}`` with ``seq``
    exactly continuing the snapshot's record ids — a truncated or
    corrupted log fails here, naming the file and line number, instead of
    silently resurrecting a partial corpus.
    """
    log_path = path / LOG_NAME
    if not log_path.is_file():
        raise corruption_error(
            "dynamic bundle has no append log "
            "(expected at least an empty one)",
            file=log_path,
        )
    replayed = 0
    with open(log_path, "r", encoding="utf-8") as log:
        for lineno, line in enumerate(log, start=1):
            stripped = line.strip()
            if not line.endswith("\n") or not stripped:
                raise corruption_error(
                    f"append log truncated at line {lineno}", file=log_path
                )
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise corruption_error(
                    f"append log line {lineno} is not valid JSON "
                    f"(truncated write?): {error}",
                    file=log_path,
                ) from error
            if (
                not isinstance(record, dict)
                or not isinstance(record.get("text"), str)
                or not isinstance(record.get("seq"), int)
            ):
                raise corruption_error(
                    f"append log line {lineno} is missing 'seq'/'text'",
                    file=log_path,
                )
            expected = snapshot_records + replayed
            if record["seq"] != expected:
                raise corruption_error(
                    f"append log line {lineno} has seq {record['seq']}, "
                    f"expected {expected} (snapshot holds "
                    f"{snapshot_records} records)",
                    file=log_path,
                )
            index.add(record["text"])
            replayed += 1
    if _METRICS.enabled and replayed:
        _METRICS.inc("storage.log_records_replayed", replayed)
    return replayed


def _open_dynamic(path: Path, manifest: Dict[str, Any]) -> Any:
    from ..search.dynamic import DynamicInvertedIndex

    arrays = _load_arrays(
        path, {**_ARRAY_DTYPES, **_DYNAMIC_ARRAY_DTYPES}, mmap=False
    )
    collection = _load_collection(path, manifest, arrays)
    require(
        len(collection) == int(manifest["num_records"]),
        f"manifest says {manifest['num_records']} records, snapshot holds "
        f"{len(collection)}",
        file=path / MANIFEST_NAME,
    )
    scheme_kwargs = manifest.get("scheme_kwargs") or {}
    index = DynamicInvertedIndex(
        mode=manifest["mode"],
        q=int(manifest["q"]) or 3,
        scheme=manifest["scheme"],
        **scheme_kwargs,
    )
    # adopt the snapshot collection wholesale (records stay plain arrays:
    # the index appends to them)
    index.collection = collection
    index._lengths = [int(record.size) for record in collection.records]
    index._lengths_dirty = True

    buffer_counts = arrays["buffer_counts"]
    buffer_values = arrays["buffer_values"]
    require(
        buffer_counts.size == arrays["tokens"].size,
        "per-list buffer counts disagree with the token listing",
        file=path / "buffer_counts.npy",
        key="buffer_counts",
    )
    require(
        int(buffer_counts.sum()) == buffer_values.size,
        "consolidated buffer extent disagrees with the per-list counts",
        file=path / "buffer_values.npy",
        key="buffer_values",
    )
    tails = np.cumsum(buffer_counts)
    for position, token, kind, payload in _iter_list_arrays(path, arrays):
        require(
            kind == _KIND_TWOLAYER,
            "dynamic bundles hold only two-region lists",
            file=path / "kinds.npy",
            key="kinds",
            token=token,
        )
        lst = index._factory(**index._scheme_kwargs)
        start = int(tails[position]) - int(buffer_counts[position])
        lst.load_state(
            store_from_arrays(payload, copy=True),
            buffer_values[start : int(tails[position])],
        )
        index.lists[token] = lst
    _replay_log(path, index, int(manifest["num_records"]))
    # journaling resumes only after a clean replay: an exception above
    # leaves the on-disk log untouched for inspection
    index.attach_append_log(path / LOG_NAME)
    return index
