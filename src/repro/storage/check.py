"""``repro check`` support for the bundle layouts.

Mirrors :mod:`repro.compression.validate`'s contract: every checker
returns a list of human-readable violations (empty = healthy) and never
raises on untrusted input — a load failure *is* the finding.  Because the
bundle loaders funnel all integrity checks through
:func:`repro.storage.arrays.corruption_error`, a violation names the
offending file and array key, and a dynamic bundle's truncated or
out-of-sequence append log surfaces with its line number.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..compression.validate import check_index
from .bundle import open_index
from .sharded import open_sharded, shard_dir

__all__ = ["check_bundle", "check_sharded_bundle"]


def check_bundle(path: Union[str, Path], max_lists: int = 0) -> List[str]:
    """Violations of an index bundle directory (static or dynamic).

    Opens the bundle eagerly — for dynamic bundles that exercises the
    full snapshot + append-log replay path — then runs the list-level
    contract checks over the reconstituted index.
    """
    try:
        index = open_index(path, mmap=False)
    # repro: noqa RA07 -- load failure on untrusted input is the finding itself
    except Exception as error:
        return [f"load failed ({type(error).__name__}): {error}"]
    try:
        return check_index(index, max_lists=max_lists)
    finally:
        # a dynamic open arms the append log; checking must not keep a
        # writable handle into the bundle
        detach = getattr(index, "detach_append_log", None)
        if detach is not None:
            detach()


def check_sharded_bundle(
    path: Union[str, Path], max_lists: int = 0
) -> List[str]:
    """Violations of a sharded bundle directory.

    Manifest/assignment cross-checks run via the sharded opener; every
    shard's posting lists are then checked individually, prefixed with
    the shard directory they belong to.
    """
    path = Path(path)
    try:
        indexes, _assignments, _manifest = open_sharded(path, mmap=False)
    # repro: noqa RA07 -- load failure on untrusted input is the finding itself
    except Exception as error:
        return [f"load failed ({type(error).__name__}): {error}"]
    issues: List[str] = []
    for position, index in enumerate(indexes):
        try:
            for issue in check_index(index, max_lists=max_lists):
                issues.append(f"{shard_dir(position)}: {issue}")
        finally:
            detach = getattr(index, "detach_append_log", None)
            if detach is not None:
                detach()
    return issues
