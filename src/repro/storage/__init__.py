"""``repro.storage`` — the unified persistence subsystem.

The paper's SSD discussion (§6.1) assumes the index is "constructed in the
offline step and dumped to SSD at once" and then queried in place; this
package is that lifecycle made real, for both halves of the paper:

* **static bundles** (:mod:`~repro.storage.bundle`) persist an offline
  :class:`~repro.search.searcher.InvertedIndex` as a directory of plain
  ``.npy`` arrays plus its tokenized collection.  Opened with
  ``mmap=True`` the posting-list payloads are served zero-copy off
  memory-mapped files — N fork workers or N processes share one on-disk
  copy through the page cache instead of N eager heap copies.
* **dynamic bundles** snapshot a
  :class:`~repro.search.dynamic.DynamicInvertedIndex` state-exactly
  (compressed region + uncompressed buffer per list) and journal every
  later ``add()`` to an append log that ``open`` replays — ingest
  survives restarts.
* **compaction** (:mod:`~repro.storage.compaction`) seals the online
  two-region lists into offline CSS blocks with the paper's Algorithm-2
  dynamic program — same ids, optimal layout, still appendable.
* **sharded bundles** (:mod:`~repro.storage.sharded`) hold one
  self-contained bundle per shard, so a sharded engine reopens without a
  caller-supplied collection.
* the **legacy** ``.npz`` formats (:mod:`~repro.storage.legacy`) stay
  readable and writable forever; the free functions in
  :mod:`repro.compression.serialize` are deprecated wrappers over them.

Entry points for applications are ``SimilarityEngine.save`` / ``.open`` /
``.compact`` and their :class:`~repro.engine.sharded.ShardedEngine`
counterparts; the functions here are the engine-free core.
"""

from . import legacy
from .bundle import (
    BUNDLE_KIND,
    BUNDLE_VERSION,
    open_index,
    read_bundle_manifest,
    save_index,
)
from .check import check_bundle, check_sharded_bundle
from .compaction import CompactionStats, compact_index, compact_list
from .sharded import (
    SHARDED_BUNDLE_KIND,
    SHARDED_BUNDLE_VERSION,
    open_sharded,
    read_sharded_manifest,
    save_sharded,
)

__all__ = [
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
    "SHARDED_BUNDLE_KIND",
    "SHARDED_BUNDLE_VERSION",
    "CompactionStats",
    "check_bundle",
    "check_sharded_bundle",
    "compact_index",
    "compact_list",
    "legacy",
    "open_index",
    "open_sharded",
    "read_bundle_manifest",
    "read_sharded_manifest",
    "save_index",
    "save_sharded",
]
