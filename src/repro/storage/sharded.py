"""Sharded bundle directories: one self-contained bundle per shard.

Layout::

    path/
      manifest.json            kind=repro.sharded_bundle, routing, counts
      shard-00000/             a full index bundle (repro.storage.bundle)
        manifest.json ...
        assignment.npy         local->global record ids (static shards)
      shard-00001/ ...

Unlike the legacy ``.npz`` shard directory, every shard bundle carries its
own tokenized sub-collection, so opening needs **no** caller-supplied
collection — ``ShardedEngine.open(path)`` is enough.  Static shards honor
``mmap=True``: N shard bundles under one directory opened by N fork
workers all serve their posting lists off the shared page cache.

Dynamic shards (``"dynamic": true``) are snapshots of per-shard
:class:`~repro.search.dynamic.DynamicInvertedIndex` objects, each with its
own append log.  Their local→global assignment is *derived*, not stored:
hash routing fixes ``global = shard_id + local * num_shards``, which stays
correct for records replayed from the logs after the snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

import numpy as np

from ..obs import METRICS as _METRICS
from .arrays import corruption_error, require
from .bundle import open_index, save_index
from .legacy import validate_assignments

__all__ = [
    "SHARDED_BUNDLE_KIND",
    "SHARDED_BUNDLE_VERSION",
    "save_sharded",
    "open_sharded",
    "read_sharded_manifest",
    "shard_dir",
]

SHARDED_BUNDLE_KIND = "repro.sharded_bundle"
SHARDED_BUNDLE_VERSION = 1
MANIFEST_NAME = "manifest.json"
ASSIGNMENT_NAME = "assignment.npy"


def shard_dir(position: int) -> str:
    return f"shard-{position:05d}"


def read_sharded_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and sanity-check ``manifest.json`` of a sharded bundle."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(
            f"{path} is not a sharded bundle (no {MANIFEST_NAME})"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("kind") != SHARDED_BUNDLE_KIND:
        raise ValueError(
            f"{manifest_path} is not a {SHARDED_BUNDLE_KIND} manifest "
            f"(kind={manifest.get('kind')!r})"
        )
    if manifest.get("version") != SHARDED_BUNDLE_VERSION:
        raise ValueError(
            f"unsupported sharded bundle version {manifest.get('version')} "
            f"in {manifest_path}"
        )
    return manifest


def save_sharded(
    indexes: Sequence[Any],
    assignments: Sequence[Sequence[int]],
    path: Union[str, Path],
    *,
    routing: str = "contiguous",
    dynamic: bool = False,
) -> Path:
    """Persist shard indexes + their id assignments as a sharded bundle."""
    if not indexes:
        raise ValueError("save_sharded needs at least one shard")
    if len(indexes) != len(assignments):
        raise ValueError(
            f"{len(indexes)} shard indexes but {len(assignments)} assignments"
        )
    arrays = [np.asarray(a, dtype=np.int64) for a in assignments]
    total = validate_assignments(arrays)
    for position, (index, assignment) in enumerate(zip(indexes, arrays)):
        if len(index.collection) != assignment.size:
            raise ValueError(
                f"shard {position} indexes {len(index.collection)} records "
                f"but its assignment lists {assignment.size}"
            )
    schemes = {index.scheme for index in indexes}
    if len(schemes) != 1:
        raise ValueError(f"shards disagree on the scheme: {sorted(schemes)}")

    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)
    with _METRICS.span("storage.save_sharded"):
        for position, (index, assignment) in enumerate(zip(indexes, arrays)):
            bundle_path = save_index(index, path / shard_dir(position))
            if dynamic:
                # hash routing makes the assignment derivable from the
                # record count, and only derivation stays correct once the
                # append log outgrows the snapshot
                (bundle_path / ASSIGNMENT_NAME).unlink(missing_ok=True)
            else:
                np.save(bundle_path / ASSIGNMENT_NAME, assignment)
    manifest = {
        "kind": SHARDED_BUNDLE_KIND,
        "version": SHARDED_BUNDLE_VERSION,
        "dynamic": bool(dynamic),
        "shards": len(indexes),
        "routing": routing,
        "scheme": next(iter(schemes)),
        "num_records": total,
        "shard_records": [int(a.size) for a in arrays],
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return path


def open_sharded(
    path: Union[str, Path], *, mmap: bool = True
) -> Tuple[List[Any], List[np.ndarray], Dict[str, Any]]:
    """Open every shard bundle under ``path``.

    Returns ``(indexes, assignments, manifest)``.  Static shards honor
    ``mmap``; dynamic shards replay their append logs and derive their
    (possibly log-extended) assignments from the hash routing.
    """
    path = Path(path)
    manifest = read_sharded_manifest(path)
    shards = int(manifest["shards"])
    shard_records = [int(n) for n in manifest["shard_records"]]
    if shards < 1 or len(shard_records) != shards:
        raise corruption_error(
            "shard count disagrees with the per-shard record listing",
            file=path / MANIFEST_NAME,
        )
    dynamic = bool(manifest.get("dynamic"))

    indexes: List[Any] = []
    assignments: List[np.ndarray] = []
    with _METRICS.span("storage.open_sharded"):
        for position in range(shards):
            bundle_path = path / shard_dir(position)
            if not bundle_path.is_dir():
                raise corruption_error(
                    "shard bundle directory is missing", file=bundle_path
                )
            index = open_index(bundle_path, mmap=mmap)
            if dynamic:
                # snapshot + replayed log; global = shard_id + local * N
                assignment = np.arange(
                    index.num_records, dtype=np.int64
                ) * shards + position
            else:
                assignment_path = bundle_path / ASSIGNMENT_NAME
                if not assignment_path.is_file():
                    raise corruption_error(
                        "shard assignment file is missing",
                        file=assignment_path,
                        key="assignment",
                    )
                assignment = np.load(assignment_path)
                require(
                    assignment.dtype == np.int64 and assignment.ndim == 1,
                    f"expected a 1-d int64 array, found {assignment.dtype} "
                    f"shape {assignment.shape}",
                    file=assignment_path,
                    key="assignment",
                )
                require(
                    assignment.size == shard_records[position],
                    f"assignment holds {assignment.size} ids, manifest "
                    f"says {shard_records[position]}",
                    file=assignment_path,
                    key="assignment",
                )
                require(
                    assignment.size == len(index.collection),
                    f"assignment holds {assignment.size} ids, shard indexes "
                    f"{len(index.collection)} records",
                    file=assignment_path,
                    key="assignment",
                )
            indexes.append(index)
            assignments.append(assignment)
    total = validate_assignments(assignments)
    if not dynamic and total != int(manifest["num_records"]):
        raise corruption_error(
            f"assignments cover {total} records, manifest says "
            f"{manifest['num_records']}",
            file=path / MANIFEST_NAME,
        )
    return indexes, assignments, manifest
