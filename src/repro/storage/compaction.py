"""Online→offline compaction: seal two-region lists into CSS blocks.

A :class:`~repro.search.dynamic.DynamicInvertedIndex` accumulates posting
ids through the online seal policies (Fix/Vari/Adapt/Model), whose block
boundaries are whatever the streaming heuristic happened to pick.  The
compaction pass replays each list through the paper's Algorithm-2 dynamic
program (:func:`repro.compression.partition.optimal_partition`) — the same
partitioner the offline CSS index uses — and rebuilds the compressed
region with the space-optimal boundaries, emptying the uncompressed
buffer into blocks as it goes.

The list objects themselves survive (same identities, new stores), so the
index stays appendable and every searcher keeps working; only the layout
changes, never the decoded ids.  Lists whose scheme is uncompressed *by
contract* (``compactable = False``, i.e. the ``uncomp`` baseline) are
skipped and counted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..compression.partition import optimal_partition
from ..compression.twolayer import TwoLayerStore
from ..obs import METRICS as _METRICS

__all__ = ["CompactionStats", "compact_index", "compact_list"]


@dataclass
class CompactionStats:
    """What one compaction pass did, for logs and benchmark records."""

    lists_compacted: int = 0
    lists_skipped: int = 0
    postings: int = 0
    bits_before: int = 0
    bits_after: int = 0
    seconds: float = 0.0

    @property
    def bits_saved(self) -> int:
        return self.bits_before - self.bits_after

    def __str__(self) -> str:
        return (
            f"compacted {self.lists_compacted} lists "
            f"({self.lists_skipped} skipped, {self.postings} postings) "
            f"in {self.seconds:.3f}s: "
            f"{self.bits_before / 8 / 1024:.1f} KiB -> "
            f"{self.bits_after / 8 / 1024:.1f} KiB"
        )


def compact_list(lst: Any) -> bool:
    """Re-partition one online list in place; ``False`` if it opted out.

    Decodes the list once, runs the offline DP over the full id sequence,
    and adopts a freshly packed store through ``load_state`` with an empty
    buffer — the buffered tail is folded into the optimal blocks.
    """
    if not getattr(lst, "compactable", False):
        return False
    values = np.asarray(lst.to_array(), dtype=np.int64)
    store = TwoLayerStore()
    if values.size:
        boundaries = optimal_partition(values)
        boundaries.append(int(values.size))
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            store.append_block(values[start:end])
    lst.load_state(store, [])
    return True


def compact_index(index: Any) -> CompactionStats:
    """Compact every posting list of a dynamic index (in place).

    Works on anything exposing a ``lists`` mapping of online lists —
    in practice :class:`~repro.search.dynamic.DynamicInvertedIndex`.
    Returns the aggregated :class:`CompactionStats`.
    """
    stats = CompactionStats()
    started = time.perf_counter()
    with _METRICS.span("storage.compact"):
        for lst in index.lists.values():
            before = lst.size_bits()
            if not compact_list(lst):
                stats.lists_skipped += 1
                continue
            stats.lists_compacted += 1
            stats.postings += len(lst)
            stats.bits_before += before
            stats.bits_after += lst.size_bits()
    stats.seconds = time.perf_counter() - started
    if _METRICS.enabled:
        _METRICS.inc("storage.compactions")
        _METRICS.inc("storage.compact_lists", stats.lists_compacted)
        _METRICS.inc("storage.compact_postings", stats.postings)
    return stats
