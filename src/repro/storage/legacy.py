"""The original ``.npz`` persistence formats, kept loadable forever.

Before :mod:`repro.storage` existed, indexes were persisted through four
free functions in :mod:`repro.compression.serialize` — a monolithic
``.npz`` per index and a manifest directory of per-shard ``.npz`` files.
Those formats stay fully supported (the CLI still writes them for ``.npz``
output paths, and every file ever dumped must keep loading), but the
implementation now lives here; the old free functions are thin deprecated
wrappers around these.

The ``.npz`` container is a zip archive, which numpy cannot memory-map —
zero-copy ``open(..., mmap=True)`` needs the directory-bundle format in
:mod:`repro.storage.bundle` instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compression.online import OnlineSortedIDList
from ..compression.serialize import store_from_arrays, store_to_arrays
from ..compression.twolayer import TwoLayerList
from ..compression.uncompressed import UncompressedList
from .arrays import LoadedTwoLayerList, require, validate_store_arrays

__all__ = [
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "SHARDED_KIND",
    "dump_index_npz",
    "load_index_npz",
    "dump_sharded_npz",
    "load_sharded_npz",
]

FORMAT_VERSION = 2
_KIND_TWOLAYER = 0
_KIND_UNCOMP = 1

SHARDED_FORMAT_VERSION = 1
SHARDED_KIND = "repro.sharded_index"
MANIFEST_NAME = "manifest.json"
ASSIGNMENTS_NAME = "assignments.npz"


def dump_index_npz(index: Any, path: Union[str, Path]) -> None:
    """Persist an :class:`InvertedIndex` to ``path`` (monolithic ``.npz``).

    Dynamic indexes are rejected up front: their online two-region lists
    are transient in this format (it has no append log), so there is
    nothing durable to persist here.  Use ``SimilarityEngine.save`` with a
    directory path — the bundle format snapshots dynamic indexes exactly.
    """
    if any(
        isinstance(lst, OnlineSortedIDList) for lst in index.lists.values()
    ):
        raise ValueError(
            "cannot dump a dynamic index: online (two-region) lists are "
            "transient by design in the .npz format; save the engine to a "
            "directory bundle (SimilarityEngine.save) to get a snapshot + "
            "append log, or rebuild the corpus as an offline InvertedIndex "
            "under a persistent scheme (uncomp/milc/css) and dump that"
        )
    tokens: List[int] = []
    kinds: List[int] = []
    bases, offsets, widths, starts = [], [], [], []
    block_counts, start_counts = [], []
    word_chunks, word_counts, bit_counts = [], [], []
    uncomp_values, uncomp_counts = [], []

    for token, lst in index.lists.items():
        tokens.append(int(token))
        if isinstance(lst, TwoLayerList):
            kinds.append(_KIND_TWOLAYER)
            arrays = store_to_arrays(lst.store)
            bases.append(arrays["bases"])
            offsets.append(arrays["offsets"])
            widths.append(arrays["widths"])
            starts.append(arrays["starts"])
            block_counts.append(arrays["bases"].size)
            start_counts.append(arrays["starts"].size)
            word_chunks.append(arrays["words"])
            word_counts.append(arrays["words"].size)
            bit_counts.append(int(arrays["num_bits"][0]))
        elif isinstance(lst, UncompressedList):
            kinds.append(_KIND_UNCOMP)
            values = lst.to_array()
            uncomp_values.append(values)
            uncomp_counts.append(values.size)
        else:
            raise TypeError(
                f"cannot serialize scheme {type(lst).__name__}; only "
                "two-layer (MILC/CSS) and uncompressed lists are persistent"
            )

    def _concat(chunks: List[np.ndarray], dtype: type) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(chunks).astype(dtype)

    manifest = {"version": FORMAT_VERSION, "scheme": index.scheme}
    np.savez_compressed(
        Path(path),
        manifest=np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8),
        tokens=np.asarray(tokens, dtype=np.int64),
        kinds=np.asarray(kinds, dtype=np.uint8),
        block_counts=np.asarray(block_counts, dtype=np.int64),
        start_counts=np.asarray(start_counts, dtype=np.int64),
        word_counts=np.asarray(word_counts, dtype=np.int64),
        bit_counts=np.asarray(bit_counts, dtype=np.int64),
        uncomp_counts=np.asarray(uncomp_counts, dtype=np.int64),
        bases=_concat(bases, np.int64),
        offsets=_concat(offsets, np.int64),
        widths=_concat(widths, np.int64),
        starts=_concat(starts, np.int64),
        words=_concat(word_chunks, np.uint64),
        uncomp_values=_concat(uncomp_values, np.int64),
    )


def load_index_npz(path: Union[str, Path], collection: Any) -> Any:
    """Load an index dumped by :func:`dump_index_npz`, bound to ``collection``.

    The caller supplies the (re-tokenized or separately persisted)
    collection the index was built from; posting-list contents come from
    the file verbatim.
    """
    from ..search.searcher import InvertedIndex

    path = Path(path)
    with np.load(path) as bundle:
        manifest = json.loads(bytes(bundle["manifest"]).decode())
        if manifest["version"] != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {manifest['version']} "
                f"in {path}"
            )
        index = InvertedIndex.__new__(InvertedIndex)
        index.collection = collection
        index.scheme = manifest["scheme"]
        index.build_seconds = 0.0
        index.lists = {}

        tokens = bundle["tokens"]
        kinds = bundle["kinds"]
        block_counts = bundle["block_counts"]
        start_counts = bundle["start_counts"]
        word_counts = bundle["word_counts"]
        bit_counts = bundle["bit_counts"]
        uncomp_counts = bundle["uncomp_counts"]
        bases, offsets = bundle["bases"], bundle["offsets"]
        widths, starts = bundle["widths"], bundle["starts"]
        words, uncomp_values = bundle["words"], bundle["uncomp_values"]

        # container-level extent consistency: the per-kind count arrays must
        # line up with the token/kind listing and the consolidated arrays
        num_twolayer = int((kinds == _KIND_TWOLAYER).sum())
        num_uncomp = int(kinds.size - num_twolayer)
        require(
            tokens.size == kinds.size,
            "tokens/kinds mismatch",
            file=path,
            key="kinds",
        )
        require(
            block_counts.size == num_twolayer
            and start_counts.size == num_twolayer
            and word_counts.size == num_twolayer
            and bit_counts.size == num_twolayer
            and uncomp_counts.size == num_uncomp,
            "per-list count arrays disagree with the token listing",
            file=path,
            key="block_counts/start_counts/word_counts/bit_counts",
        )
        require(
            int(block_counts.sum()) == bases.size
            and bases.size == offsets.size
            and bases.size == widths.size
            and int(start_counts.sum()) == starts.size
            and int(word_counts.sum()) == words.size
            and int(uncomp_counts.sum()) == uncomp_values.size,
            "consolidated array extents disagree with the per-list counts",
            file=path,
            key="bases/offsets/widths/starts/words/uncomp_values",
        )

        b = s = w = u = 0  # running extents into the consolidated arrays
        twolayer_seen = 0
        for position, token in enumerate(tokens.tolist()):
            if kinds[position] == _KIND_TWOLAYER:
                nb = int(block_counts[twolayer_seen])
                ns = int(start_counts[twolayer_seen])
                nw = int(word_counts[twolayer_seen])
                arrays = {
                    "bases": bases[b : b + nb],
                    "offsets": offsets[b : b + nb],
                    "widths": widths[b : b + nb],
                    "starts": starts[s : s + ns],
                    "words": words[w : w + nw],
                    "num_bits": np.asarray(
                        [bit_counts[twolayer_seen]], dtype=np.int64
                    ),
                }
                validate_store_arrays(arrays, token, file=path)
                index.lists[token] = LoadedTwoLayerList(
                    store_from_arrays(arrays), manifest["scheme"]
                )
                b += nb
                s += ns
                w += nw
                twolayer_seen += 1
            else:
                count = int(uncomp_counts[position - twolayer_seen])
                require(
                    count >= 0 and u + count <= uncomp_values.size,
                    "uncompressed extent out of range",
                    file=path,
                    key="uncomp_values",
                    token=token,
                )
                index.lists[token] = UncompressedList(
                    uncomp_values[u : u + count]
                )
                u += count
        # random access depends on what was actually loaded, not on trust
        index.supports_random_access = all(
            lst.supports_random_access for lst in index.lists.values()
        )
        return index


# ---------------------------------------------------------------------- #
# sharded persistence: one manifest + one validated .npz per shard
# ---------------------------------------------------------------------- #
def validate_assignments(assignments: List[np.ndarray]) -> int:
    """Check the shard assignment is a partition of ``0..N-1``; returns N."""
    total = sum(int(a.size) for a in assignments)
    if total == 0:
        return 0
    flat = np.concatenate(assignments)
    if flat.size and not np.array_equal(
        np.sort(flat), np.arange(total, dtype=np.int64)
    ):
        raise ValueError(
            "shard assignments must cover record ids 0..N-1 exactly once"
        )
    for position, assignment in enumerate(assignments):
        if assignment.size > 1 and not np.all(np.diff(assignment) > 0):
            raise ValueError(
                f"shard {position} assignment is not strictly ascending"
            )
    return total


def shard_file(position: int) -> str:
    return f"shard-{position:05d}.npz"


def dump_sharded_npz(
    indexes: Sequence,
    assignments: Sequence[Sequence[int]],
    path: Union[str, Path],
    routing: str = "contiguous",
) -> None:
    """Persist a sharded index to directory ``path`` (legacy layout).

    Layout: ``manifest.json`` (version, routing, shard count, per-shard
    record counts, scheme), ``assignments.npz`` (one local→global int64
    array per shard) and one :func:`dump_index_npz` ``.npz`` per shard —
    each shard file reuses the consolidated, load-validated store arrays of
    the monolithic format, so a corrupted shard fails loudly at load time.
    """
    if not indexes:
        raise ValueError("dump_sharded needs at least one shard")
    if len(indexes) != len(assignments):
        raise ValueError(
            f"{len(indexes)} shard indexes but {len(assignments)} assignments"
        )
    arrays = [np.asarray(a, dtype=np.int64) for a in assignments]
    total = validate_assignments(arrays)
    for position, (index, assignment) in enumerate(zip(indexes, arrays)):
        if len(index.collection) != assignment.size:
            raise ValueError(
                f"shard {position} indexes {len(index.collection)} records "
                f"but its assignment lists {assignment.size}"
            )
    schemes = {index.scheme for index in indexes}
    if len(schemes) != 1:
        raise ValueError(f"shards disagree on the scheme: {sorted(schemes)}")

    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)
    for position, index in enumerate(indexes):
        dump_index_npz(index, path / shard_file(position))
    np.savez_compressed(
        path / ASSIGNMENTS_NAME,
        **{f"shard_{i}": a for i, a in enumerate(arrays)},
    )
    manifest = {
        "version": SHARDED_FORMAT_VERSION,
        "kind": SHARDED_KIND,
        "shards": len(indexes),
        "routing": routing,
        "scheme": next(iter(schemes)),
        "num_records": total,
        "shard_records": [int(a.size) for a in arrays],
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )


def load_sharded_npz(
    path: Union[str, Path],
    collection_for_shard: Callable[[int, np.ndarray], object],
) -> Tuple[List, List[np.ndarray], Dict]:
    """Load a :func:`dump_sharded_npz` directory.

    ``collection_for_shard(shard_id, global_ids)`` supplies the tokenized
    sub-collection each shard index binds to (this format stores posting
    lists and the id remap, never the strings).  Returns
    ``(indexes, assignments, manifest)``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a sharded index (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("kind") != SHARDED_KIND:
        raise ValueError(
            f"{manifest_path} is not a {SHARDED_KIND} manifest"
        )
    if manifest.get("version") != SHARDED_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded index version {manifest.get('version')}"
        )
    shards = int(manifest["shards"])
    shard_records = [int(n) for n in manifest["shard_records"]]
    if shards < 1 or len(shard_records) != shards:
        raise ValueError(
            "corrupted sharded manifest: shard count disagrees with the "
            "per-shard record listing"
        )

    with np.load(path / ASSIGNMENTS_NAME) as bundle:
        assignments = [
            bundle[f"shard_{position}"].astype(np.int64)
            for position in range(shards)
        ]
    for position, (assignment, expected) in enumerate(
        zip(assignments, shard_records)
    ):
        if assignment.size != expected:
            raise ValueError(
                f"corrupted sharded index: shard {position} assignment "
                f"holds {assignment.size} ids, manifest says {expected}"
            )
    if validate_assignments(assignments) != int(manifest["num_records"]):
        raise ValueError(
            "corrupted sharded index: assignments disagree with the "
            "manifest record count"
        )

    indexes = []
    for position in range(shards):
        shard_path = path / shard_file(position)
        if not shard_path.is_file():
            raise ValueError(f"missing shard file {shard_path}")
        indexes.append(
            load_index_npz(
                shard_path,
                collection_for_shard(position, assignments[position]),
            )
        )
    return indexes, assignments, manifest


def read_manifest(path: Union[str, Path]) -> Optional[Dict]:
    """The parsed ``manifest.json`` of a directory layout, if one exists."""
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        return None
    return json.loads(manifest_path.read_text(encoding="utf-8"))
