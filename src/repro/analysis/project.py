"""The whole-program index behind the project rules (RA10-RA13).

One parse sweep over every module produces:

- a module table (dotted name -> :class:`ModuleFacts`),
- per-class attribute tables (which ``self.X`` attributes exist, which are
  locks, which are condition aliases of a lock, which hold unpicklable
  resources, which are built from project classes),
- a method -> attribute-access map, where every access records the set of
  ``with self.<lock>:`` blocks lexically enclosing it, and
- a call graph good enough to resolve ``self.method()`` and module-level
  ``function()`` calls.

The index is deliberately conservative and purely syntactic: only ``self.``
receivers are tracked, nested ``def``/``lambda`` bodies are recorded as
*deferred* (they run later, outside the enclosing lock scope), and anything
the sweep cannot resolve simply produces no edge.  The rules built on top
(:mod:`repro.analysis.project_rules`) are written so that missing facts can
only cause missed findings, never false ones.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set

from .rules import Module, enclosing_span, following_span, statement_spans

__all__ = [
    "AttrAccess",
    "CallSite",
    "ClassInfo",
    "MethodInfo",
    "ModuleFacts",
    "ProjectIndex",
    "build_project",
]

#: ``threading.Lock``/``RLock`` factory names — the guards RA10 keys on.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: factories whose product must never cross a pickle/fork boundary (RA12):
#: locks, condition variables, events, threads, pools, mmaps, thread-locals.
_UNSAFE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Thread",
        "Timer",
        "local",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Pool",
        "mmap",
    }
)

#: ``# repro: guarded-by(_lock)`` — assert that the tagged statement holds
#: the named lock(s) through a mechanism the analyzer cannot see.
_GUARDED_BY = re.compile(
    r"#\s*repro:\s*guarded-by\(\s*(?P<locks>[^)]*?)\s*\)"
)


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.X`` read or write inside a method body."""

    attr: str
    line: int
    col: int
    is_write: bool
    #: ``with self.<attr>:`` blocks lexically holding the access
    locks: FrozenSet[str]
    #: inside a nested ``def``/``lambda`` — runs later, locks not held
    deferred: bool


@dataclass(frozen=True)
class CallSite:
    """A resolvable call: ``self.name(...)`` or module-level ``name(...)``."""

    scope: str  # "self" | "module"
    name: str
    line: int
    locks: FrozenSet[str]
    deferred: bool


@dataclass
class MethodInfo:
    """Facts about one function or method body."""

    name: str
    module: str
    klass: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    accesses: List[AttrAccess] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: ``self`` appears in an executor payload (``submit(...)`` arguments
    #: or an ``initargs=`` keyword) inside this method
    ships_self: bool = False


@dataclass
class ClassInfo:
    """Attribute tables and method map for one top-level class."""

    name: str
    module: str
    path: Path
    line: int
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    #: attributes assigned a ``threading.Lock()``/``RLock()`` (or a bare
    #: ``Condition()``, which owns its own lock)
    lock_attrs: Set[str] = field(default_factory=set)
    #: condition attr -> the lock attr it wraps
    #: (``self._wake = threading.Condition(self._lock)``)
    lock_aliases: Dict[str, str] = field(default_factory=dict)
    #: attr -> factory name, for attributes holding unpicklable resources
    unsafe_attrs: Dict[str, str] = field(default_factory=dict)
    #: attr -> CamelCase constructor names it is ever assigned from, the
    #: one-hop edge RA12 uses to follow composition (engine -> DecodeCache)
    attr_constructors: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def ships_self(self) -> bool:
        return any(m.ships_self for m in self.methods.values())

    def guard_names(self) -> Set[str]:
        """Every attribute that acts as a lock, aliases included."""
        return self.lock_attrs | set(self.lock_aliases)

    def canonical_lock(self, name: str) -> str:
        """Collapse a condition alias to the lock it wraps."""
        return self.lock_aliases.get(name, name)


@dataclass
class ModuleFacts:
    """Everything the sweep learned about one module."""

    module: Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, MethodInfo] = field(default_factory=dict)
    #: line -> lock names a ``# repro: guarded-by(...)`` tag vouches for
    guarded_hints: Dict[int, FrozenSet[str]] = field(default_factory=dict)


@dataclass
class ProjectIndex:
    """The cross-module view handed to every project rule."""

    modules: Dict[str, ModuleFacts] = field(default_factory=dict)

    def iter_classes(self) -> Iterator[ClassInfo]:
        for facts in self.modules.values():
            yield from facts.classes.values()

    def find_classes(self, simple_name: str) -> List[ClassInfo]:
        """All project classes with this unqualified name."""
        return [c for c in self.iter_classes() if c.name == simple_name]

    def repro_root(self) -> Optional[Path]:
        """The ``repro`` package directory the scanned modules live under.

        Derived from any module whose dotted name is anchored at ``repro``,
        so fixture trees (``tmp/repro/...``) resolve to their own root and
        never leak facts from the installed package.
        """
        for name, facts in self.modules.items():
            parts = name.split(".")
            if parts[0] != "repro":
                continue
            path = facts.module.path.resolve()
            # repro/a/b.py is len(parts) components below the directory
            # holding the package; an __init__.py adds one more
            index = len(parts) - (2 if path.stem != "__init__" else 1)
            if index < 0:
                return path.parent
            if index < len(path.parents):
                return path.parents[index]
        return None


def _terminal_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_self_attr(node: ast.expr, self_name: Optional[str]) -> Optional[str]:
    """The attribute name when ``node`` is ``<self>.X``, else None."""
    if (
        self_name is not None
        and isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


class _BodyScanner(ast.NodeVisitor):
    """Collects accesses, calls, and lock context for one method body."""

    def __init__(self, info: MethodInfo, self_name: Optional[str]) -> None:
        self.info = info
        self.self_name = self_name
        self.held: List[str] = []
        self.depth = 0  # nested def/lambda depth

    # -- lock context -------------------------------------------------- #

    def _locks(self) -> FrozenSet[str]:
        return frozenset() if self.depth else frozenset(self.held)

    def _scan_with(self, node: ast.AST, items: List[ast.withitem]) -> None:
        acquired: List[str] = []
        for item in items:
            attr = _is_self_attr(item.context_expr, self.self_name)
            if attr is not None and self.depth == 0:
                acquired.append(attr)
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held.extend(acquired)
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired):]

    def visit_With(self, node: ast.With) -> None:
        self._scan_with(node, node.items)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._scan_with(node, node.items)

    # -- deferred bodies ----------------------------------------------- #

    def _scan_nested(self, node: ast.AST) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._scan_nested(node)

    # -- accesses and calls -------------------------------------------- #

    def _record_access(self, node: ast.Attribute, is_write: bool) -> None:
        self.info.accesses.append(
            AttrAccess(
                attr=node.attr,
                line=node.lineno,
                col=node.col_offset,
                is_write=is_write,
                locks=self._locks(),
                deferred=bool(self.depth),
            )
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_self_attr(node, self.self_name) is not None:
            self._record_access(
                node, isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self._entries[key] = ...`` mutates the container: count it as a
        # write of the attribute, in addition to the Load the generic walk
        # records, so item assignment puts an attr into the guarded set.
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            if _is_self_attr(node.value, self.self_name) is not None:
                self._record_access(node.value, True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.info.calls.append(
                CallSite(
                    scope="module",
                    name=func.id,
                    line=node.lineno,
                    locks=self._locks(),
                    deferred=bool(self.depth),
                )
            )
        else:
            attr = _is_self_attr(func, self.self_name)
            if attr is not None:
                self.info.calls.append(
                    CallSite(
                        scope="self",
                        name=attr,
                        line=node.lineno,
                        locks=self._locks(),
                        deferred=bool(self.depth),
                    )
                )
        if self._ships_self(node):
            self.info.ships_self = True
        self.generic_visit(node)

    def _ships_self(self, node: ast.Call) -> bool:
        if self.self_name is None:
            return False

        def mentions_self(expr: ast.expr) -> bool:
            return any(
                isinstance(n, ast.Name) and n.id == self.self_name
                for n in ast.walk(expr)
            )

        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "submit",
            "map",
            "apply_async",
        ):
            if any(mentions_self(arg) for arg in node.args):
                return True
        for keyword in node.keywords:
            if keyword.arg == "initargs" and mentions_self(keyword.value):
                return True
        return False


def _self_name(node: ast.AST) -> Optional[str]:
    """The receiver name of an instance method, by convention ``self``.

    ``staticmethod``/``classmethod`` bodies have no ``self`` receiver, and
    the convention check handles them without decoding decorators.
    """
    args = getattr(node, "args", None)
    if args is None or not args.args:
        return None
    first = args.args[0].arg
    return first if first == "self" else None


def _scan_callable(
    node: ast.AST, module_name: str, klass: Optional[str]
) -> MethodInfo:
    info = MethodInfo(
        name=getattr(node, "name", "<lambda>"),
        module=module_name,
        klass=klass,
        node=node,
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )
    scanner = _BodyScanner(info, _self_name(node))
    for stmt in getattr(node, "body", []):
        scanner.visit(stmt)
    return info


def _scan_class_attrs(info: ClassInfo, node: ast.ClassDef) -> None:
    """Fill the lock/unsafe/constructor attribute tables for one class.

    Walks every ``self.X = <value>`` assignment in the class body
    (including ones nested in conditionals or conditional expressions) and
    classifies the calls appearing in the value.
    """
    for sub in ast.walk(node):
        if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            sub.targets if isinstance(sub, ast.Assign) else [sub.target]
        )
        value = sub.value
        if value is None:
            continue
        attrs = [
            t.attr
            for t in targets
            if isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ]
        if not attrs:
            continue
        for call in (n for n in ast.walk(value) if isinstance(n, ast.Call)):
            name = _terminal_name(call.func)
            if name is None:
                continue
            for attr in attrs:
                if name in _LOCK_FACTORIES:
                    info.lock_attrs.add(attr)
                elif name == "Condition":
                    wrapped = (
                        _is_self_attr(call.args[0], "self")
                        if call.args
                        else None
                    )
                    if wrapped is not None:
                        info.lock_aliases[attr] = wrapped
                    else:
                        # a bare Condition owns its own lock
                        info.lock_attrs.add(attr)
                if name in _UNSAFE_FACTORIES:
                    info.unsafe_attrs.setdefault(attr, name)
                elif name[:1].isupper():
                    info.attr_constructors.setdefault(attr, set()).add(name)


def _collect_guarded_hints(module: Module) -> Dict[int, FrozenSet[str]]:
    spans = statement_spans(module.tree)
    hints: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(module.lines, start=1):
        match = _GUARDED_BY.search(line)
        if match is None:
            continue
        names = frozenset(
            part.strip()
            for part in match.group("locks").split(",")
            if part.strip()
        )
        if not names:
            continue
        if line.lstrip().startswith("#"):
            span = (
                enclosing_span(spans, number, simple_only=True)
                or following_span(spans, number)
                or (number + 1, number + 1)
            )
        else:
            span = enclosing_span(spans, number) or (number, number)
        for covered in range(span[0], span[1] + 1):
            hints[covered] = hints.get(covered, frozenset()) | names
    return hints


def _scan_module(module: Module) -> ModuleFacts:
    facts = ModuleFacts(
        module=module, guarded_hints=_collect_guarded_hints(module)
    )
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions[node.name] = _scan_callable(
                node, module.name, None
            )
        elif isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=node.name,
                module=module.name,
                path=module.path,
                line=node.lineno,
            )
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    info.methods[item.name] = _scan_callable(
                        item, module.name, node.name
                    )
            _scan_class_attrs(info, node)
            facts.classes[node.name] = info
    return facts


def build_project(modules: Sequence[Module]) -> ProjectIndex:
    """One sweep over already-parsed modules -> the project index."""
    index = ProjectIndex()
    for module in modules:
        index.modules[module.name] = _scan_module(module)
    return index
