"""The repo-specific lint rules (RA01-RA09).

Each rule encodes an invariant the paper's pipeline depends on but generic
linters cannot see — which modules are the compressed hot path, which
integer literals are really the two-layer layout geometry, what shape a
telemetry name must have.  Rules are small classes registered in
:data:`RULES`; the engine hands each one a parsed :class:`Module` and
collects :class:`Violation` records.

Every rule can be silenced for one line with an inline or preceding
``# repro: noqa RAxx -- reason`` comment (see :mod:`repro.analysis.engine`);
a suppression without a reason is itself flagged (RA00).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Violation",
    "Module",
    "Rule",
    "RULES",
    "register_rule",
    "rule_table",
    "statement_spans",
    "enclosing_span",
    "following_span",
]


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired, and what to do."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Module:
    """A parsed source file plus the context rules key their scoping on."""

    path: Path
    name: str  # dotted module name, e.g. ``repro.search.toccurrence``
    lines: List[str]
    tree: ast.Module

    def in_package(self, *packages: str) -> bool:
        return any(
            self.name == p or self.name.startswith(p + ".") for p in packages
        )


class Rule:
    """Base class: subclasses set ``code``/``summary`` and yield findings."""

    code: str = ""
    summary: str = ""

    def check(self, module: Module) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: Module, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: the rule registry, keyed by code; populated by :func:`register_rule`.
RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


def rule_table() -> List[Tuple[str, str]]:
    """``(code, summary)`` pairs for ``repro lint --explain`` and the docs."""
    return [(code, RULES[code].summary) for code in sorted(RULES)]


def statement_spans(tree: ast.AST) -> List[Tuple[int, int, bool]]:
    """``(lineno, end_lineno, is_simple)`` for statements and except clauses.

    The spans drive comment scoping: an inline ``# repro: noqa`` (or
    ``guarded-by``) tag applies to the whole statement it sits on, not just
    its first physical line, so multi-line calls and decorated defs can be
    tagged on any of their lines.  ``ast.ExceptHandler`` is included so a
    tag on an ``except`` header scopes to that clause alone rather than the
    enclosing ``try`` statement.
    """
    spans: List[Tuple[int, int, bool]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.stmt, ast.ExceptHandler)):
            simple = not hasattr(node, "body")
            spans.append((node.lineno, node.end_lineno or node.lineno, simple))
    spans.sort()
    return spans


def enclosing_span(
    spans: Iterable[Tuple[int, int, bool]],
    line: int,
    simple_only: bool = False,
) -> Optional[Tuple[int, int]]:
    """The innermost (shortest) span containing ``line``, if any.

    With ``simple_only`` compound statements (anything with a body) are
    skipped, so a standalone comment *inside* a multi-line expression
    resolves to that statement rather than the whole enclosing block.
    """
    best: Optional[Tuple[int, int]] = None
    for start, end, simple in spans:
        if simple_only and not simple:
            continue
        if start <= line <= end:
            if best is None or end - start < best[1] - best[0]:
                best = (start, end)
    return best


def following_span(
    spans: Iterable[Tuple[int, int, bool]], line: int
) -> Optional[Tuple[int, int]]:
    """The span of the first statement starting strictly after ``line``.

    When several statements share that start line (``if x: y = 1``), the
    widest one wins so a standalone comment covers the whole construct.
    """
    start: Optional[int] = None
    end = 0
    for s, e, _ in spans:
        if s <= line:
            continue
        if start is None or s < start:
            start, end = s, e
        elif s == start:
            end = max(end, e)
    if start is None:
        return None
    return (start, end)


def _walk(module: Module) -> Iterable[ast.AST]:
    return ast.walk(module.tree)


# ---------------------------------------------------------------------- #
# RA01 — no naked decode on the query hot path
# ---------------------------------------------------------------------- #
#: build/maintenance modules inside the hot packages that legitimately
#: materialize full arrays (index construction, not query serving)
_RA01_WHITELIST = (
    "repro.search.searcher",
    "repro.search.dynamic",
)


@register_rule
class NoNakedDecode(Rule):
    code = "RA01"
    summary = (
        "search/join hot paths must reach decoded ids through "
        "DecodeCache/CachedListView, never raw .to_array()/.decode_block()"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.in_package("repro.search", "repro.join"):
            return
        if module.name in _RA01_WHITELIST:
            return
        for node in _walk(module):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("to_array", "decode_block")
            ):
                yield self.violation(
                    module,
                    node,
                    f"raw .{node.func.attr}() on the query hot path; go "
                    "through the engine's DecodeCache (cache.fetch_ids) or "
                    "a CachedListView so repeated probes hit the cache",
                )


# ---------------------------------------------------------------------- #
# RA02 — layout constants must come from compression.constants
# ---------------------------------------------------------------------- #
#: flagged everywhere under repro.compression: these integers are only
#: ever the paper's layout geometry (69-bit metadata, rho=37, Theorem-1
#: horizon 138) and a drifting copy silently breaks size accounting
_RA02_ANYWHERE = {69, 37, 138}
#: additionally flagged in the layout-defining modules, where a literal
#: 32 or 5 is almost always ELEMENT_BITS / WIDTH_FIELD_BITS in disguise
_RA02_LAYOUT = {32, 5}
_RA02_LAYOUT_MODULES = (
    "repro.compression.base",
    "repro.compression.bitpack",
    "repro.compression.twolayer",
    "repro.compression.partition",
    "repro.compression.pfordelta",
    "repro.compression.online",
)
_RA02_NAMES = {
    69: "METADATA_BITS",
    37: "SEAL_RHO",
    138: "THEOREM_1_BUFFER",
    32: "ELEMENT_BITS",
    5: "WIDTH_FIELD_BITS",
}


@register_rule
class MagicConstantDrift(Rule):
    code = "RA02"
    summary = (
        "layout literals (69/37/138, and 32/5 in layout modules) must be "
        "imported from repro.compression.constants, not retyped"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.in_package("repro.compression"):
            return
        if module.name == "repro.compression.constants":
            return
        banned = set(_RA02_ANYWHERE)
        if module.in_package(*_RA02_LAYOUT_MODULES):
            banned |= _RA02_LAYOUT
        for node in _walk(module):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in banned
            ):
                name = _RA02_NAMES[node.value]
                yield self.violation(
                    module,
                    node,
                    f"magic layout constant {node.value}: import {name} "
                    "from repro.compression.constants",
                )


# ---------------------------------------------------------------------- #
# RA03 — telemetry names follow the component.operation convention
# ---------------------------------------------------------------------- #
#: METRICS spans/counters must be component.operation (>= 2 components);
#: TRACER roots name a whole query tree, so a bare component is allowed
#: ("search", "join") — but every component must still be a lowercase
#: identifier ("Search", "join-run", "join run" all fail)
_RA03_DOTTED = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
_RA03_COMPONENT = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
_RA03_METHODS = ("span", "inc", "observe", "trace")
_RA03_RECEIVERS = ("METRICS", "TRACER")


@register_rule
class SpanNaming(Rule):
    code = "RA03"
    summary = (
        "METRICS span/counter names must be dotted lowercase "
        "component.operation; TRACER roots a lowercase component"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in _walk(module):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RA03_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id.lstrip("_").upper() in _RA03_RECEIVERS
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            pattern = (
                _RA03_COMPONENT
                if node.func.attr == "trace"
                else _RA03_DOTTED
            )
            if not pattern.match(first.value):
                yield self.violation(
                    module,
                    first,
                    f"telemetry name {first.value!r} does not follow the "
                    "dotted component.operation convention",
                )


# ---------------------------------------------------------------------- #
# RA04 — executor payloads must be module-level callables
# ---------------------------------------------------------------------- #
@register_rule
class PoolPayloadSafety(Rule):
    code = "RA04"
    summary = (
        "callables submitted to executors must be module-level functions "
        "(lambdas/closures break process pools under spawn)"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        nested = _nested_function_names(module.tree)
        for node in _walk(module):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            if attr == "submit":
                pass
            elif attr == "map" and _looks_like_executor(node.func.value):
                pass
            else:
                continue
            if not node.args:
                continue
            payload = node.args[0]
            if isinstance(payload, ast.Lambda):
                yield self.violation(
                    module,
                    payload,
                    f"lambda passed to .{attr}(); hoist it to a "
                    "module-level function so the payload survives a "
                    "spawn-based process pool",
                )
            elif isinstance(payload, ast.Name) and payload.id in nested:
                yield self.violation(
                    module,
                    payload,
                    f"nested function {payload.id!r} passed to .{attr}(); "
                    "hoist it to module level so the payload survives a "
                    "spawn-based process pool",
                )


def _looks_like_executor(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and (
        "pool" in node.id.lower() or "executor" in node.id.lower()
    )


def _nested_function_names(tree: ast.Module) -> set:
    names = set()
    for outer in ast.walk(tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    names.add(inner.name)
    return names


# ---------------------------------------------------------------------- #
# RA05 — every concrete scheme class is registered
# ---------------------------------------------------------------------- #
#: sentinel scheme_name values of the abstract base classes
_RA05_EXEMPT_NAMES = ("abstract", "online")


@register_rule
class RegistryCompleteness(Rule):
    code = "RA05"
    summary = (
        "every class defining a concrete scheme_name must be registered "
        "with register_scheme (decorator or module-level call)"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        registered = _names_registered_by_call(module.tree)
        for node in _walk(module):
            if not isinstance(node, ast.ClassDef):
                continue
            scheme = _class_scheme_name(node)
            if scheme is None or scheme in _RA05_EXEMPT_NAMES:
                continue
            if _has_register_decorator(node) or node.name in registered:
                continue
            yield self.violation(
                module,
                node,
                f"class {node.name} defines scheme_name={scheme!r} but is "
                "never passed to register_scheme; the CLI and benches "
                "cannot reach it",
            )


def _class_scheme_name(node: ast.ClassDef) -> Optional[str]:
    for statement in node.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "scheme_name"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return value.value
    return None


def _has_register_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "register_scheme":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "register_scheme":
            return True
    return False


def _names_registered_by_call(tree: ast.Module) -> set:
    """Class names appearing as arguments of ``register_scheme(...)`` calls."""
    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_register = (
            isinstance(func, ast.Name) and func.id == "register_scheme"
        ) or (isinstance(func, ast.Attribute) and func.attr == "register_scheme")
        if not is_register:
            continue
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(argument, ast.Name):
                names.add(argument.id)
    return names


# ---------------------------------------------------------------------- #
# RA06 — invariants raise, never assert
# ---------------------------------------------------------------------- #
@register_rule
class NoAssertInvariants(Rule):
    code = "RA06"
    summary = (
        "library code must raise on invariant violations, not assert "
        "(asserts vanish under python -O)"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.in_package("repro"):
            # tests and benchmarks assert by design; only shipped library
            # code has to survive ``python -O``
            return
        for node in _walk(module):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    module,
                    node,
                    "assert statement in library code; raise ValueError/"
                    "RuntimeError so the check survives python -O",
                )


# ---------------------------------------------------------------------- #
# RA07 — broad except handlers need a justification
# ---------------------------------------------------------------------- #
_RA07_BROAD = ("Exception", "BaseException")


@register_rule
class BroadExcept(Rule):
    code = "RA07"
    summary = (
        "except Exception/BaseException (or bare except) requires a "
        "'# repro: noqa RA07 -- reason' justification unless it re-raises"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in _walk(module):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            # a handler that unconditionally re-raises only annotates the
            # exception's journey; it swallows nothing
            if any(isinstance(stmt, ast.Raise) for stmt in node.body):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield self.violation(
                module,
                node,
                f"{caught} swallows unexpected failures; narrow the "
                "exception tuple or justify it with "
                "'# repro: noqa RA07 -- reason'",
            )


def _is_broad(type_node: Optional[ast.expr]) -> bool:
    if type_node is None:
        return True
    candidates = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    return any(
        isinstance(c, ast.Name) and c.id in _RA07_BROAD for c in candidates
    )


# ---------------------------------------------------------------------- #
# RA08 — the two-layer storage model's private layout stays private
# ---------------------------------------------------------------------- #
#: the storage model's private layout vectors; everything outside the
#: storage layer must go through the public surface (max_width_bits(),
#: block_sizes(), decode_blocks(), ...) so the layout can evolve without
#: breaking distant modules (as estimate_lookup_us once did by reading
#: store._widths directly).
_RA08_PRIVATE = {
    "_bases",
    "_offsets",
    "_widths",
    "_starts",
    "_bases_np",
    "_offsets_np",
    "_widths_np",
    "_starts_np",
}

#: the storage layer itself: the layout's home plus its serialization,
#: integrity-check and introspection companions, which exist precisely to
#: see the raw vectors.
_RA08_WHITELIST = (
    "repro.compression.twolayer",
    "repro.compression.serialize",
    "repro.compression.validate",
    "repro.compression.introspect",
)


@register_rule
class StorageModelPrivacy(Rule):
    code = "RA08"
    summary = (
        "the two-layer layout vectors (_bases/_offsets/_widths/_starts) are "
        "private to the storage layer; use the public block-store surface"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        if module.name in _RA08_WHITELIST:
            return
        for node in _walk(module):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _RA08_PRIVATE
                # self._widths inside any class is that class's own state,
                # not a reach into the storage model
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.violation(
                    module,
                    node,
                    f"access to the storage model's private {node.attr!r}; "
                    "use the public surface (max_width_bits(), "
                    "block_sizes(), decode_blocks(), iter_blocks()) so the "
                    "layout can evolve",
                )


# ---------------------------------------------------------------------- #
# RA09 — persistence goes through repro.storage, not the deprecated
# free functions
# ---------------------------------------------------------------------- #
#: the pre-bundle persistence surface, kept only as deprecated shims.
#: New code saves and opens through ``SimilarityEngine.save``/``open``
#: (or ``repro.storage.save_index``/``open_index``) so every call site
#: gains mmap loading, dynamic snapshots and the compaction path.
_RA09_DEPRECATED = {
    "dump_index",
    "load_index",
    "dump_sharded",
    "load_sharded",
}

#: where the shims live (their *definitions* are not calls, but the
#: modules may re-export or exercise the names while delegating to the
#: ``repro.storage.legacy`` implementations).
_RA09_WHITELIST = (
    "repro.storage",
    "repro.compression.serialize",
)


@register_rule
class DeprecatedPersistenceCalls(Rule):
    code = "RA09"
    summary = (
        "dump_index/load_index/dump_sharded/load_sharded are deprecated; "
        "persist through SimilarityEngine.save/open or repro.storage"
    )

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        if module.in_package(*_RA09_WHITELIST):
            return
        for node in _walk(module):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                called = func.id
            elif isinstance(func, ast.Attribute):
                called = func.attr
            else:
                continue
            if called in _RA09_DEPRECATED:
                yield self.violation(
                    module,
                    node,
                    f"call to deprecated {called}(); use "
                    "SimilarityEngine.save/open, ShardedEngine.save/open "
                    "or the repro.storage bundle API",
                )
