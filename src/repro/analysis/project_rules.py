"""The project-scoped rules (RA10-RA13), run over a :class:`ProjectIndex`.

These rules see the whole program at once — class attribute tables, the
method -> access map, and the call graph from :mod:`repro.analysis.project`
— so they can check invariants no single file reveals: lock discipline
(RA10), event-loop blocking through call chains (RA11), what actually
crosses a fork/pickle boundary (RA12), and the telemetry namespace (RA13).

Each rule is conservative: facts the index could not resolve produce no
finding.  The escapes are the same as for the per-file rules — an inline
``# repro: noqa RAxx -- reason`` — plus, for RA10 only, a
``# repro: guarded-by(<lock>)`` tag asserting that a statement holds the
named lock through a mechanism the analyzer cannot see.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from .project import ClassInfo, MethodInfo, ModuleFacts, ProjectIndex
from .rules import Violation

__all__ = [
    "PROJECT_RULES",
    "ProjectRule",
    "register_project_rule",
    "project_rule_table",
    "guarded_attribute_map",
]


class ProjectRule:
    """Base class: subclasses set ``code``/``summary``, yield findings."""

    code: str = ""
    summary: str = ""

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError


#: the project-rule registry, keyed by code.
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    if cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate project rule code {cls.code}")
    PROJECT_RULES[cls.code] = cls()
    return cls


def project_rule_table() -> List[Tuple[str, str]]:
    """``(code, summary)`` pairs for ``repro lint --explain`` and docs."""
    return [
        (code, PROJECT_RULES[code].summary)
        for code in sorted(PROJECT_RULES)
    ]


# ---------------------------------------------------------------------- #
# RA10 — guarded-by lock discipline
# ---------------------------------------------------------------------- #
#: methods where unguarded access is fine by construction: the instance is
#: not shared yet (``__init__``/``__new__``), is being torn down, or is
#: mid-pickle on a single thread.
_RA10_EXEMPT_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__del__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__reduce_ex__",
    }
)


def _canonical(cls: ClassInfo, names: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(cls.canonical_lock(n) for n in names)


def _entry_locks(
    cls: ClassInfo, guards: Set[str]
) -> Dict[str, FrozenSet[str]]:
    """Locks provably held on entry to each method, to a fixed point.

    A private helper (single leading underscore) whose every visible
    ``self.helper()`` call site holds a lock inherits the intersection of
    those sites' held sets — the ``_insert -> _evict_over_capacity`` "call
    with lock held" pattern.  Public and dunder methods are assumed
    callable from anywhere and always start with nothing held.
    """
    entry: Dict[str, FrozenSet[str]] = {
        name: frozenset() for name in cls.methods
    }
    sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for method in cls.methods.values():
        for call in method.calls:
            if call.scope != "self" or call.name not in cls.methods:
                continue
            held = frozenset() if call.deferred else call.locks
            sites.setdefault(call.name, []).append((method.name, held))
    changed = True
    while changed:
        changed = False
        for name in cls.methods:
            if not name.startswith("_") or name.startswith("__"):
                continue
            callers = sites.get(name)
            if not callers:
                continue
            held_sets = [
                entry[caller] | _canonical(cls, held & frozenset(guards))
                for caller, held in callers
            ]
            new = frozenset.intersection(*held_sets)
            if new != entry[name]:
                entry[name] = new
                changed = True
    return entry


def guarded_attribute_map(cls: ClassInfo) -> Dict[str, FrozenSet[str]]:
    """Inferred contract: attr -> canonical lock(s) it is written under.

    An attribute enters the guarded set when any method writes it while a
    class lock is held (lexically, or via lock-held helper entry).  Lock
    attributes themselves and their condition aliases are excluded.
    """
    guards = cls.guard_names()
    if not guards:
        return {}
    entry = _entry_locks(cls, guards)
    guarded: Dict[str, Set[str]] = {}
    for method in cls.methods.values():
        base = entry.get(method.name, frozenset())
        for access in method.accesses:
            if not access.is_write or access.deferred:
                continue
            if access.attr in guards:
                continue
            held = base | _canonical(cls, access.locks & frozenset(guards))
            if held:
                guarded.setdefault(access.attr, set()).update(held)
    return {attr: frozenset(locks) for attr, locks in guarded.items()}


@register_project_rule
class GuardedByDiscipline(ProjectRule):
    code = "RA10"
    summary = (
        "attributes written under a class lock must always be accessed "
        "with that lock held (annotate '# repro: guarded-by(lock)' for "
        "externally synchronized access)"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        for facts in project.modules.values():
            if not facts.module.in_package("repro"):
                continue
            for cls in facts.classes.values():
                yield from self._check_class(facts, cls)

    def _check_class(
        self, facts: ModuleFacts, cls: ClassInfo
    ) -> Iterator[Violation]:
        guards = cls.guard_names()
        if not guards:
            return
        guarded = guarded_attribute_map(cls)
        if not guarded:
            return
        entry = _entry_locks(cls, guards)
        for method in cls.methods.values():
            if method.name in _RA10_EXEMPT_METHODS:
                continue
            base = entry.get(method.name, frozenset())
            for access in method.accesses:
                need = guarded.get(access.attr)
                if need is None:
                    continue
                if facts.guarded_hints.get(access.line):
                    continue  # explicit annotation escape
                held = (
                    frozenset()
                    if access.deferred
                    else base
                    | _canonical(cls, access.locks & frozenset(guards))
                )
                if held & need:
                    continue
                verb = "written" if access.is_write else "read"
                lock = "/".join(sorted(need))
                yield Violation(
                    rule=self.code,
                    path=str(cls.path),
                    line=access.line,
                    col=access.col,
                    message=(
                        f"{cls.name}.{access.attr} is guarded by "
                        f"self.{lock} (it is written under that lock) but "
                        f"{verb} here in {method.name}() without it; hold "
                        "the lock or annotate "
                        f"'# repro: guarded-by({lock})'"
                    ),
                )


# ---------------------------------------------------------------------- #
# RA11 — no blocking calls reachable from async handlers
# ---------------------------------------------------------------------- #
_RA11_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)
_RA11_SOCKET_METHODS = frozenset(
    {"accept", "recv", "recv_into", "recvfrom", "sendall", "makefile"}
)
_RA11_PATH_IO = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)
_RA11_ENGINE_CALLS = frozenset(
    {"search", "search_batch", "search_many", "add", "add_many"}
)


def _mentions_engine(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "engine" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "engine" in node.attr.lower():
            return True
    return False


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open() performs blocking file I/O"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    value = func.value
    receiver = value.id if isinstance(value, ast.Name) else None
    if receiver == "time" and attr == "sleep":
        return "time.sleep() stalls the event loop; use asyncio.sleep()"
    if receiver == "os" and attr == "system":
        return "os.system() blocks on a subprocess"
    if receiver == "subprocess" and attr in _RA11_SUBPROCESS:
        return f"subprocess.{attr}() blocks on a subprocess"
    if receiver == "socket":
        return f"socket.{attr}() performs blocking network I/O"
    if attr in _RA11_SOCKET_METHODS:
        return f".{attr}() performs blocking socket I/O"
    if attr == "urlopen":
        return "urlopen() performs blocking network I/O"
    if attr == "result":
        return (
            "Future.result() blocks the loop; await "
            "asyncio.wrap_future(...) instead"
        )
    if attr in _RA11_PATH_IO:
        return f".{attr}() performs blocking file I/O"
    if attr in _RA11_ENGINE_CALLS and _mentions_engine(value):
        return (
            f"direct engine .{attr}() call; route it through the "
            "coalescer or asyncio.to_thread(...)"
        )
    return None


def _own_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in a function body, skipping nested def/lambda bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


@register_project_rule
class EventLoopBlocking(ProjectRule):
    code = "RA11"
    summary = (
        "code reachable from async def in repro.serve must not call "
        "blocking APIs (time.sleep, sync I/O, direct engine searches)"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        for facts in project.modules.values():
            if not facts.module.in_package("repro.serve"):
                continue
            yield from self._check_module(facts)

    def _check_module(self, facts: ModuleFacts) -> Iterator[Violation]:
        # seed with every async function/method, then follow resolvable
        # synchronous edges: self.method() within the class, function()
        # within the module.  Calls inside nested defs are deferred and
        # not followed.
        reached: Dict[int, Tuple[MethodInfo, str]] = {}
        worklist: List[Tuple[MethodInfo, Optional[ClassInfo], str]] = []

        def origin_name(info: MethodInfo) -> str:
            if info.klass:
                return f"{info.klass}.{info.name}"
            return info.name

        for func in facts.functions.values():
            if func.is_async:
                worklist.append((func, None, origin_name(func)))
        for cls in facts.classes.values():
            for method in cls.methods.values():
                if method.is_async:
                    worklist.append((method, cls, origin_name(method)))
        while worklist:
            info, cls, origin = worklist.pop()
            if id(info) in reached:
                continue
            reached[id(info)] = (info, origin)
            for call in info.calls:
                if call.deferred:
                    continue
                target: Optional[MethodInfo] = None
                if call.scope == "self" and cls is not None:
                    target = cls.methods.get(call.name)
                elif call.scope == "module":
                    target = facts.functions.get(call.name)
                if target is not None and id(target) not in reached:
                    worklist.append((target, cls, origin))

        seen: Set[Tuple[int, int]] = set()
        for info, origin in reached.values():
            for call in _own_calls(info.node):
                reason = _blocking_reason(call)
                if reason is None:
                    continue
                where = (call.lineno, call.col_offset)
                if where in seen:
                    continue
                seen.add(where)
                site = (
                    f"in async {origin}()"
                    if info.is_async
                    else f"reachable from async {origin}()"
                )
                yield Violation(
                    rule=self.code,
                    path=str(facts.module.path),
                    line=call.lineno,
                    col=call.col_offset,
                    message=f"{reason} ({site})",
                )


# ---------------------------------------------------------------------- #
# RA12 — fork/pickle safety of executor payloads
# ---------------------------------------------------------------------- #
def _copies_dict(node: ast.AST) -> bool:
    return any(
        isinstance(n, ast.Attribute) and n.attr == "__dict__"
        for n in ast.walk(node)
    )


def _mentioned_names(node: ast.AST) -> Set[str]:
    mentioned: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            mentioned.add(sub.value)
        elif isinstance(sub, ast.Attribute):
            mentioned.add(sub.attr)
        elif isinstance(sub, ast.Name):
            mentioned.add(sub.id)
    return mentioned


@register_project_rule
class ForkPickleSafety(ProjectRule):
    code = "RA12"
    summary = (
        "classes shipped in executor payloads must neutralize locks, "
        "pools, mmaps, and thread handles in __getstate__/__reduce__"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        shipped: List[ClassInfo] = []
        seen: Set[Tuple[str, str]] = set()

        def add(cls: ClassInfo) -> bool:
            key = (cls.module, cls.name)
            if key in seen:
                return False
            seen.add(key)
            shipped.append(cls)
            return True

        for facts in project.modules.values():
            if not facts.module.in_package("repro"):
                continue
            for cls in facts.classes.values():
                if cls.ships_self:
                    add(cls)
        # one composition hop: attributes of a shipped class built from
        # project classes travel inside its pickled state
        frontier = list(shipped)
        for cls in frontier:
            for ctor_names in cls.attr_constructors.values():
                for name in sorted(ctor_names):
                    for target in project.find_classes(name):
                        add(target)

        for cls in sorted(shipped, key=lambda c: (str(c.path), c.line)):
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Violation]:
        if not cls.unsafe_attrs:
            return
        getstate = cls.methods.get("__getstate__")
        reduce = cls.methods.get("__reduce__") or cls.methods.get(
            "__reduce_ex__"
        )
        unsafe = ", ".join(
            f"{attr} ({factory})"
            for attr, factory in sorted(cls.unsafe_attrs.items())
        )
        if getstate is None and reduce is None:
            yield Violation(
                rule=self.code,
                path=str(cls.path),
                line=cls.line,
                col=0,
                message=(
                    f"{cls.name} is shipped to executor payloads but has "
                    f"no __getstate__/__reduce__ to neutralize {unsafe}"
                ),
            )
            return
        if getstate is not None and _copies_dict(getstate.node):
            mentioned = _mentioned_names(getstate.node)
            node = getstate.node
            for attr, factory in sorted(cls.unsafe_attrs.items()):
                if attr in mentioned:
                    continue
                yield Violation(
                    rule=self.code,
                    path=str(cls.path),
                    line=getattr(node, "lineno", cls.line),
                    col=getattr(node, "col_offset", 0),
                    message=(
                        f"{cls.name}.__getstate__ copies __dict__ but "
                        f"never clears {attr} ({factory}), which cannot "
                        "cross a pickle/fork boundary"
                    ),
                )


# ---------------------------------------------------------------------- #
# RA13 — telemetry names live in the obs/NAMES manifest
# ---------------------------------------------------------------------- #
_RA13_METHODS = frozenset(
    {
        "inc",
        "observe",
        "record_time",
        "set_gauge",
        "register_gauge",
        "span",
        "trace",
        "counter",
        "gauge",
        "timer_seconds",
    }
)
_RA13_RECEIVERS = ("METRICS", "TRACER")


def _is_telemetry_receiver(value: ast.expr) -> bool:
    if isinstance(value, ast.Name):
        return value.id.lstrip("_").upper() in _RA13_RECEIVERS
    if isinstance(value, ast.Attribute):
        return (
            value.attr.lstrip("_").upper() in _RA13_RECEIVERS
            or value.attr == "metrics"
        )
    return False


def telemetry_names(
    facts: ModuleFacts,
) -> Iterator[Tuple[str, ast.Call]]:
    """Constant telemetry name strings used in one module.

    Dynamic names (f-strings, concatenations) are invisible to the
    manifest check and should be documented as comments in ``obs/NAMES``.
    """
    for node in ast.walk(facts.module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _RA13_METHODS:
            continue
        if not _is_telemetry_receiver(func.value):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield first.value, node


def _read_manifest(path: Path) -> Dict[str, int]:
    declared: Dict[str, int] = {}
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip()
        if line:
            declared.setdefault(line, number)
    return declared


@register_project_rule
class TelemetryManifest(ProjectRule):
    code = "RA13"
    summary = (
        "every constant METRICS/TRACER name must be declared in the "
        "obs/NAMES manifest (and every manifest entry must be used)"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        uses: List[Tuple[str, ModuleFacts, ast.Call]] = []
        for facts in project.modules.values():
            if not facts.module.in_package("repro"):
                continue
            for name, node in telemetry_names(facts):
                uses.append((name, facts, node))
        root = project.repro_root()
        if root is None:
            return
        manifest = root / "obs" / "NAMES"
        if not manifest.is_file():
            for name, facts, node in uses:
                yield Violation(
                    rule=self.code,
                    path=str(facts.module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"telemetry name {name!r} has no manifest: "
                        f"{manifest} does not exist"
                    ),
                )
            return
        declared = _read_manifest(manifest)
        used: Set[str] = set()
        for name, facts, node in uses:
            used.add(name)
            if name in declared:
                continue
            yield Violation(
                rule=self.code,
                path=str(facts.module.path),
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"telemetry name {name!r} is not declared in "
                    "obs/NAMES; add it so /metrics series cannot drift"
                ),
            )
        # stale entries are only meaningful on a whole-tree scan; the
        # registry module's presence is the proxy for that
        if "repro.obs.registry" not in project.modules:
            return
        for name, number in sorted(declared.items(), key=lambda kv: kv[1]):
            if name in used:
                continue
            yield Violation(
                rule=self.code,
                path=str(manifest),
                line=number,
                col=0,
                message=(
                    f"manifest entry {name!r} is never used by any "
                    "constant telemetry call; delete it or tag the "
                    "dynamic producer in a comment"
                ),
            )
