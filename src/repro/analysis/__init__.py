"""Repo-specific static analysis: the ``repro lint`` engine.

Generic linters cannot know that ``69`` is the two-layer metadata width,
that ``repro.join`` probes must go through the decode cache, or that a
lambda handed to the batch pool dies under ``spawn``.  This package
encodes those repo-specific invariants as AST rules (RA01-RA09, see
:mod:`repro.analysis.rules`) behind a small engine
(:mod:`repro.analysis.engine`) with per-line justified suppressions.

On top of the per-file rules sits a whole-program pass: one parse sweep
builds a project index (:mod:`repro.analysis.project` — module table,
class attribute tables, method -> access map, call graph) that powers the
concurrency rules RA10-RA13 (:mod:`repro.analysis.project_rules`): lock
discipline, event-loop blocking, fork/pickle safety, and the telemetry
name manifest.  ``repro lint --project`` runs them; the opt-in runtime
counterpart (:mod:`repro.analysis.sanitize`) enforces the inferred lock
contracts live while the test suites run.

The committed baseline is **zero**: ``repro lint`` on the shipped tree
(package, tests, and benchmarks) reports nothing, and CI keeps it that
way.
"""

from .engine import (
    default_targets,
    format_violations,
    lint_file,
    lint_paths,
    load_module,
    repo_source_root,
)
from .project import ProjectIndex, build_project
from .project_rules import (
    PROJECT_RULES,
    ProjectRule,
    guarded_attribute_map,
    project_rule_table,
    register_project_rule,
)
from .rules import RULES, Module, Rule, Violation, register_rule, rule_table

__all__ = [
    "RULES",
    "PROJECT_RULES",
    "Module",
    "Rule",
    "ProjectRule",
    "ProjectIndex",
    "Violation",
    "register_rule",
    "register_project_rule",
    "rule_table",
    "project_rule_table",
    "guarded_attribute_map",
    "build_project",
    "lint_file",
    "lint_paths",
    "load_module",
    "format_violations",
    "repo_source_root",
    "default_targets",
]
