"""Repo-specific static analysis: the ``repro lint`` engine.

Generic linters cannot know that ``69`` is the two-layer metadata width,
that ``repro.join`` probes must go through the decode cache, or that a
lambda handed to the batch pool dies under ``spawn``.  This package
encodes those repo-specific invariants as AST rules (RA01-RA09, see
:mod:`repro.analysis.rules`) behind a small engine
(:mod:`repro.analysis.engine`) with per-line justified suppressions.

The committed baseline is **zero**: ``repro lint`` on the shipped tree
reports nothing, and CI keeps it that way.
"""

from .engine import format_violations, lint_file, lint_paths, repo_source_root
from .rules import RULES, Module, Rule, Violation, register_rule, rule_table

__all__ = [
    "RULES",
    "Module",
    "Rule",
    "Violation",
    "register_rule",
    "rule_table",
    "lint_file",
    "lint_paths",
    "format_violations",
    "repo_source_root",
]
