"""Opt-in runtime lock-discipline sanitizer — RA10, enforced live.

The static rule RA10 *infers* which attributes a class guards with which
lock; this module turns that same inference into runtime assertions.
:func:`install` re-runs the whole-program pass over the installed sources,
takes the guarded-attribute map of each target class (the coalescer, both
engines, the decode cache, the tracer, the metrics registry), and patches
the class's ``__setattr__`` so that every write of a guarded attribute
checks lock ownership — raising :class:`LockDisciplineError` from the
exact offending frame instead of corrupting shared state silently.

Scope and escapes mirror the static rule: construction and pickling
frames (``__init__``, ``__getstate__``/``__setstate__``/``__reduce__``,
``__new__``, ``__del__``) are exempt, and instances whose lock attribute
does not exist yet (mid-construction, or neutralized for a fork) are
skipped.  Only *writes* are checked: lock-free reads of guarded state are
sometimes legitimate (monitoring endpoints accept torn reads), and the
static rule already polices reads inside the owning class.

The sanitizer is wired into the test suite behind the ``REPRO_SANITIZE``
environment flag (see ``tests/conftest.py``) and the CI ``sanitize`` job
runs the serve + engine suites with it enabled, dynamically validating
the static inference.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Type

__all__ = [
    "LockDisciplineError",
    "guarded_plans",
    "install",
    "uninstall",
    "is_installed",
]


class LockDisciplineError(AssertionError):
    """A guarded attribute was written without its lock held."""


#: the guarded classes of the serving/engine/observability stack
_TARGETS: Tuple[Tuple[str, str], ...] = (
    ("repro.serve.coalescer", "BatchCoalescer"),
    ("repro.engine.core", "SimilarityEngine"),
    ("repro.engine.sharded", "ShardedEngine"),
    ("repro.engine.cache", "DecodeCache"),
    ("repro.obs.trace", "Tracer"),
    ("repro.obs.registry", "MetricsRegistry"),
)

#: frames allowed to write guarded attributes lock-free, mirroring the
#: static rule's method whitelist
_EXEMPT_FRAMES = frozenset(
    {
        "__init__",
        "__new__",
        "__del__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__reduce_ex__",
    }
)

#: class -> original ``__setattr__`` from the class __dict__ (None when it
#: was inherited), while the sanitizer is installed
_PATCHED: Dict[type, Optional[Any]] = {}


def guarded_plans() -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """Inferred contracts per target class, from the static RA10 pass.

    Returns ``{class name: {attr: lock attribute candidates}}`` where the
    candidates are every instance attribute holding the guarding lock —
    the canonical lock plus any condition alias wrapping it (owning
    ``self._wake`` and owning ``self._lock`` are the same thing).
    """
    from .engine import load_module
    from .project import build_project
    from .project_rules import guarded_attribute_map

    modules = []
    for module_name, _ in _TARGETS:
        spec = importlib.import_module(module_name).__file__
        if spec is None:
            continue
        module = load_module(Path(spec))
        if module is not None:
            modules.append(module)
    index = build_project(modules)
    plans: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    for _, class_name in _TARGETS:
        for cls in index.find_classes(class_name):
            guarded = guarded_attribute_map(cls)
            if not guarded:
                continue
            aliases_of: Dict[str, List[str]] = {}
            for alias, target in cls.lock_aliases.items():
                aliases_of.setdefault(target, []).append(alias)
            plan: Dict[str, Tuple[str, ...]] = {}
            for attr, locks in guarded.items():
                candidates: List[str] = []
                for lock in sorted(locks):
                    candidates.append(lock)
                    candidates.extend(sorted(aliases_of.get(lock, ())))
                plan[attr] = tuple(candidates)
            plans[class_name] = plan
    return plans


def _owned(lock: Any) -> bool:
    """Best-effort "does the current thread own this lock".

    ``RLock`` and ``Condition`` expose ``_is_owned()``.  A plain ``Lock``
    has no owner concept, so a non-blocking probe stands in: if the lock
    cannot be acquired it is held (by us, we assume — a write racing
    another holder is exactly the bug the static rule exists to prevent).
    """
    probe = getattr(lock, "_is_owned", None)
    if probe is not None:
        try:
            return bool(probe())
        except RuntimeError:
            return False
    acquire = getattr(lock, "acquire", None)
    if acquire is None:
        return True  # not a lock object; fail open
    if acquire(False):
        lock.release()
        return False
    return True


def _make_setattr(
    cls: type, guards: Dict[str, Tuple[str, ...]]
) -> Any:
    def checked_setattr(self: Any, name: str, value: Any) -> None:
        candidates = guards.get(name)
        if candidates is not None:
            caller = sys._getframe(1).f_code.co_name
            if caller not in _EXEMPT_FRAMES:
                held = object.__getattribute__(self, "__dict__")
                locks = [
                    held[lock] for lock in candidates if lock in held
                ]
                # no lock yet: the instance is mid-construction or had
                # its lock neutralized for a fork — nothing to assert
                if locks and not any(_owned(lock) for lock in locks):
                    raise LockDisciplineError(
                        f"{cls.__name__}.{name} written from {caller}() "
                        f"without holding self.{'/'.join(candidates)} "
                        "(lock-sanitizer; see docs/analysis.md, RA10)"
                    )
        object.__setattr__(self, name, value)

    return checked_setattr


def install() -> None:
    """Patch the target classes with lock-asserting ``__setattr__``."""
    if _PATCHED:
        return
    plans = guarded_plans()
    for module_name, class_name in _TARGETS:
        guards = plans.get(class_name)
        if not guards:
            continue  # e.g. MetricsRegistry owns no lock today
        module = importlib.import_module(module_name)
        cls: Type[Any] = getattr(module, class_name)
        _PATCHED[cls] = cls.__dict__.get("__setattr__")
        setattr(cls, "__setattr__", _make_setattr(cls, guards))


def uninstall() -> None:
    """Restore every patched class to its original ``__setattr__``."""
    for cls, original in _PATCHED.items():
        if original is None:
            delattr(cls, "__setattr__")
        else:
            setattr(cls, "__setattr__", original)
    _PATCHED.clear()


def is_installed() -> bool:
    return bool(_PATCHED)
