"""The lint engine: file walking, suppression handling, reporting.

The engine parses each Python file once, derives its dotted module name
(so rules can scope themselves to packages like ``repro.compression``),
runs every selected rule from :data:`repro.analysis.rules.RULES`, and
filters the findings against the file's suppression comments.  With
``project=True`` it additionally feeds every parsed module into the
whole-program index (:mod:`repro.analysis.project`) and runs the
project-scoped rules RA10-RA13 on top.

Suppression syntax (one rule code per comment)::

    ids = lst.to_array()  # repro: noqa RA01 -- full scan is the contract

    # repro: noqa RA02 -- Silverman rule exponent, not a layout constant
    bandwidth = 1.06 * spread * n ** (-1 / 5)

An inline comment silences the whole statement it sits on (every physical
line of a multi-line call, not just the first); a standalone comment
silences the next statement.  The ``-- reason`` is mandatory: a
suppression without one is reported as **RA00** and cannot itself be
suppressed — the whole point of the tag is the recorded justification.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .project import build_project
from .project_rules import PROJECT_RULES
from .rules import (
    RULES,
    Module,
    Violation,
    enclosing_span,
    following_span,
    statement_spans,
)

__all__ = [
    "lint_paths",
    "lint_file",
    "load_module",
    "format_violations",
    "repo_source_root",
    "default_targets",
]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s+(?P<code>RA\d{2})(?:\s*--\s*(?P<reason>.*\S))?"
)


def repo_source_root() -> Path:
    """The installed ``repro`` package directory — the default lint target."""
    return Path(__file__).resolve().parent.parent


def default_targets() -> List[Path]:
    """What a bare ``repro lint`` walks: the package, tests, benchmarks.

    The sibling ``tests/`` and ``benchmarks/`` trees only exist when
    running from a source checkout (``src/repro`` layout); an installed
    package falls back to linting itself.
    """
    root = repo_source_root()
    targets = [root]
    if root.parent.name == "src":
        repo = root.parent.parent
        for extra in ("tests", "benchmarks"):
            candidate = repo / extra
            if candidate.is_dir():
                targets.append(candidate)
    return targets


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component.

    Files outside a ``repro`` tree (fixtures, scratch scripts) fall back to
    their stem, which keeps package-scoped rules quiet for them unless the
    fixture deliberately mimics the layout (``tmp/repro/search/mod.py``).
    """
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchored = [p for p in enumerate(parts) if p[1] == "repro"]
    if not anchored:
        return parts[-1] if parts else str(path)
    start = anchored[-1][0]
    return ".".join(parts[start:])


def _collect_suppressions(
    lines: Sequence[str], path: Path, tree: Optional[ast.Module] = None
) -> Tuple[Dict[str, Set[int]], List[Violation]]:
    """Suppressed ``code -> line numbers`` plus RA00 findings for bad tags.

    With a parse tree available, each tag covers a full statement span: an
    inline tag covers the innermost statement containing its line, a
    standalone comment covers the next statement (``node.end_lineno``
    included), so multi-line statements are silenced as one unit.
    """
    spans = statement_spans(tree) if tree is not None else []
    suppressed: Dict[str, Set[int]] = {}
    problems: List[Violation] = []
    for number, line in enumerate(lines, start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        if not match.group("reason"):
            problems.append(
                Violation(
                    rule="RA00",
                    path=str(path),
                    line=number,
                    col=match.start(),
                    message=(
                        "suppression without a justification; write "
                        f"'# repro: noqa {match.group('code')} -- reason'"
                    ),
                )
            )
            continue
        if line.lstrip().startswith("#"):
            # a standalone comment inside a multi-line statement covers
            # that statement; one between statements covers the next
            span = (
                enclosing_span(spans, number, simple_only=True)
                or following_span(spans, number)
                or (number + 1, number + 1)
            )
        else:
            span = enclosing_span(spans, number) or (number, number)
        target = suppressed.setdefault(match.group("code"), set())
        target.update(range(span[0], span[1] + 1))
    return suppressed, problems


def load_module(path: Path) -> Optional[Module]:
    """Parse one file into a :class:`Module`; ``None`` on a syntax error."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return Module(
        path=path,
        name=_module_name(path),
        lines=source.splitlines(),
        tree=tree,
    )


def _parse_file(
    path: Path,
) -> Tuple[Optional[Module], List[Violation], Dict[str, Set[int]]]:
    """``(module, parse problems, suppression map)`` for one file."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        problem = Violation(
            rule="RA99",
            path=str(path),
            line=error.lineno or 1,
            col=error.offset or 0,
            message=f"file does not parse: {error.msg}",
        )
        return None, [problem], {}
    module = Module(path=path, name=_module_name(path), lines=lines, tree=tree)
    suppressed, problems = _collect_suppressions(lines, path, tree)
    return module, problems, suppressed


def _split_select(
    select: Optional[Iterable[str]], project: bool
) -> Tuple[Set[str], Set[str]]:
    """Validate a rule selection into (per-file codes, project codes)."""
    if select is None:
        return set(RULES), set(PROJECT_RULES) if project else set()
    codes = set(select)
    unknown = codes - set(RULES) - set(PROJECT_RULES)
    if unknown:
        known = sorted(RULES) + sorted(PROJECT_RULES)
        raise ValueError(
            f"unknown rule code(s) {sorted(unknown)}; known: {known}"
        )
    project_codes = codes & set(PROJECT_RULES)
    if project_codes and not project:
        raise ValueError(
            f"rule(s) {sorted(project_codes)} need the whole-program "
            "index; run with --project (lint_paths(project=True))"
        )
    return codes & set(RULES), project_codes


def lint_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """All per-file findings for one file (suppressions already applied)."""
    codes, _ = _split_select(select, project=False)
    module, findings, suppressed = _parse_file(Path(path))
    if module is None:
        return findings
    for code in sorted(codes):
        for violation in RULES[code].check(module):
            if violation.line in suppressed.get(code, ()):
                continue
            findings.append(violation)
    return findings


def _iter_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Iterable[str]] = None,
    *,
    project: bool = False,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``.

    ``paths=None`` lints the source checkout itself (``src/repro`` plus
    the ``tests/`` and ``benchmarks/`` trees when present) — the
    self-lint mode CI and the test suite run.  ``project=True`` builds
    the whole-program index over every parsed file and runs the
    project rules (RA10-RA13) as well.
    """
    targets = [Path(p) for p in paths] if paths else default_targets()
    files = _iter_files(targets)
    file_codes, project_codes = _split_select(select, project)
    violations: List[Violation] = []
    modules: List[Module] = []
    suppression_map: Dict[str, Dict[str, Set[int]]] = {}
    for path in files:
        module, problems, suppressed = _parse_file(path)
        violations.extend(problems)
        if module is None:
            continue
        modules.append(module)
        suppression_map[str(path)] = suppressed
        for code in sorted(file_codes):
            for violation in RULES[code].check(module):
                if violation.line in suppressed.get(code, ()):
                    continue
                violations.append(violation)
    if project and project_codes:
        index = build_project(modules)
        for code in sorted(project_codes):
            for violation in PROJECT_RULES[code].check(index):
                suppressed_lines = suppression_map.get(
                    violation.path, {}
                ).get(code, set())
                if violation.line in suppressed_lines:
                    continue
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(files)


#: the stable JSON report schema version (``--format json``)
JSON_SCHEMA = "repro.analysis/v1"


def format_violations(
    violations: Sequence[Violation], fmt: str = "text", files_checked: int = 0
) -> str:
    """Render findings as ``text``, a stable ``json`` document, or
    ``github`` workflow annotations."""
    if fmt == "json":
        payload = {
            "schema": JSON_SCHEMA,
            "files_checked": files_checked,
            "violations": [asdict(v) for v in violations],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt == "github":
        lines = [
            f"::error file={v.path},line={v.line},col={v.col},"
            f"title={v.rule}::{v.message}"
            for v in violations
        ]
        lines.append(_summary_line(violations, files_checked))
        return "\n".join(lines)
    if fmt != "text":
        raise ValueError(
            f"format must be 'text', 'json', or 'github', got {fmt!r}"
        )
    if not violations:
        return _summary_line(violations, files_checked)
    rendered = [v.render() for v in violations]
    rendered.append(_summary_line(violations, files_checked))
    return "\n".join(rendered)


def _summary_line(violations: Sequence[Violation], files_checked: int) -> str:
    if not violations:
        return (
            f"clean: {files_checked} files checked, "
            f"{len(RULES) + len(PROJECT_RULES)} rules, 0 violations"
        )
    return f"{len(violations)} violation(s) in {files_checked} files"
