"""The lint engine: file walking, suppression handling, reporting.

The engine parses each Python file once, derives its dotted module name
(so rules can scope themselves to packages like ``repro.compression``),
runs every selected rule from :data:`repro.analysis.rules.RULES`, and
filters the findings against the file's suppression comments.

Suppression syntax (one rule code per comment)::

    ids = lst.to_array()  # repro: noqa RA01 -- full scan is the contract

    # repro: noqa RA02 -- Silverman rule exponent, not a layout constant
    bandwidth = 1.06 * spread * n ** (-1 / 5)

An inline comment silences its own line; a standalone comment silences
exactly the next line.  The ``-- reason`` is mandatory: a suppression
without one is reported as **RA00** and cannot itself be suppressed —
the whole point of the tag is the recorded justification.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import RULES, Module, Violation

__all__ = ["lint_paths", "lint_file", "format_violations", "repo_source_root"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s+(?P<code>RA\d{2})(?:\s*--\s*(?P<reason>.*\S))?"
)


def repo_source_root() -> Path:
    """The installed ``repro`` package directory — the default lint target."""
    return Path(__file__).resolve().parent.parent


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component.

    Files outside a ``repro`` tree (fixtures, scratch scripts) fall back to
    their stem, which keeps package-scoped rules quiet for them unless the
    fixture deliberately mimics the layout (``tmp/repro/search/mod.py``).
    """
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchored = [p for p in enumerate(parts) if p[1] == "repro"]
    if not anchored:
        return parts[-1] if parts else str(path)
    start = anchored[-1][0]
    return ".".join(parts[start:])


def _collect_suppressions(
    lines: Sequence[str], path: Path
) -> Tuple[Dict[str, Set[int]], List[Violation]]:
    """Suppressed ``code -> line numbers`` plus RA00 findings for bad tags."""
    suppressed: Dict[str, Set[int]] = {}
    problems: List[Violation] = []
    for number, line in enumerate(lines, start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        if not match.group("reason"):
            problems.append(
                Violation(
                    rule="RA00",
                    path=str(path),
                    line=number,
                    col=match.start(),
                    message=(
                        "suppression without a justification; write "
                        f"'# repro: noqa {match.group('code')} -- reason'"
                    ),
                )
            )
            continue
        target = number + 1 if line.lstrip().startswith("#") else number
        suppressed.setdefault(match.group("code"), set()).add(target)
    return suppressed, problems


def lint_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """All findings for one file (suppressions already applied)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Violation(
                rule="RA99",
                path=str(path),
                line=error.lineno or 1,
                col=error.offset or 0,
                message=f"file does not parse: {error.msg}",
            )
        ]
    module = Module(path=path, name=_module_name(path), lines=lines, tree=tree)
    suppressed, findings = _collect_suppressions(lines, path)
    codes = set(select) if select else set(RULES)
    unknown = codes - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {sorted(unknown)}; known: {sorted(RULES)}"
        )
    for code in sorted(codes):
        for violation in RULES[code].check(module):
            if violation.line in suppressed.get(code, ()):
                continue
            findings.append(violation)
    return findings


def _iter_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Iterable[str]] = None,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``.

    ``paths=None`` lints the installed ``repro`` package itself — the
    self-lint mode CI and the test suite run.
    """
    targets = [Path(p) for p in paths] if paths else [repo_source_root()]
    files = _iter_files(targets)
    violations: List[Violation] = []
    for path in files:
        violations.extend(lint_file(path, select=select))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(files)


def format_violations(
    violations: Sequence[Violation], fmt: str = "text", files_checked: int = 0
) -> str:
    """Render findings as ``text`` (one per line) or a ``json`` array."""
    if fmt == "json":
        return json.dumps([asdict(v) for v in violations], indent=2)
    if fmt != "text":
        raise ValueError(f"format must be 'text' or 'json', got {fmt!r}")
    if not violations:
        return (
            f"clean: {files_checked} files checked, "
            f"{len(RULES)} rules, 0 violations"
        )
    rendered = [v.render() for v in violations]
    rendered.append(
        f"{len(violations)} violation(s) in {files_checked} files"
    )
    return "\n".join(rendered)
