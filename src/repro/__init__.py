"""CSS — Compressed String Similarity search and join.

Reproduction of *"Highly Efficient String Similarity Search and Join over
Compressed Indexes"* (Xiao, Wang, Lin, Zaniolo; ICDE 2022).

Quick tour
----------

Offline (similarity search)::

    from repro import SimilarityEngine, tokenize_collection

    coll = tokenize_collection(strings, mode="qgram", q=3)
    engine = SimilarityEngine(coll, scheme="css")  # or uncomp / milc / pfordelta
    hits = engine.search("query string", 0.8)      # frozen SearchResult
    batch = engine.search_batch(queries, 0.8, workers=4)

Online (similarity join)::

    from repro import PositionFilterJoin

    join = PositionFilterJoin(coll, scheme="adapt")  # or uncomp / fix / vari
    pairs = join.join(0.8)
    print(join.last_stats.index_mb)

Subpackages
-----------

* :mod:`repro.compression` — offline codecs (Uncomp, MILC, CSS, PForDelta, …)
  and the online two-region lists (Fix, Vari, Adapt, Model),
* :mod:`repro.core` — list operations and the scheme registry,
* :mod:`repro.similarity` — tokenizers, measures, verification,
* :mod:`repro.search` — SSS engines (ScanCount / MergeSkip / DivideSkip),
* :mod:`repro.join` — SSJ engines (Count / Prefix / Position / Segment),
* :mod:`repro.datasets` — seeded synthetic workloads,
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from .compression import (
    CSSList,
    EliasFanoList,
    MILCList,
    PForDeltaList,
    RoaringList,
    SortedIDList,
    UncompressedList,
    VByteList,
)
from .compression.online import AdaptList, FixList, ModelList, VariList
from .core import offline_factory, online_factory, register_scheme
from .datasets import load_dataset
from .engine import DecodeCache, ShardedEngine, SimilarityEngine
from .join import (
    CountFilterJoin,
    PrefixFilterRSJoin,
    PositionFilterJoin,
    PrefixFilterJoin,
    SegmentFilterJoin,
)
from .search import (
    EditDistanceSearcher,
    InvertedIndex,
    JaccardSearcher,
    SearchResult,
    SearchStats,
)
from .similarity import (
    edit_distance,
    jaccard,
    tokenize_collection,
    tokenize_pair,
)

__version__ = "1.0.0"

__all__ = [
    "SortedIDList",
    "UncompressedList",
    "MILCList",
    "CSSList",
    "PForDeltaList",
    "VByteList",
    "EliasFanoList",
    "RoaringList",
    "FixList",
    "VariList",
    "AdaptList",
    "ModelList",
    "offline_factory",
    "online_factory",
    "register_scheme",
    "SimilarityEngine",
    "ShardedEngine",
    "DecodeCache",
    "SearchResult",
    "SearchStats",
    "tokenize_collection",
    "jaccard",
    "edit_distance",
    "InvertedIndex",
    "JaccardSearcher",
    "EditDistanceSearcher",
    "CountFilterJoin",
    "PrefixFilterJoin",
    "PositionFilterJoin",
    "SegmentFilterJoin",
    "PrefixFilterRSJoin",
    "tokenize_pair",
    "load_dataset",
    "__version__",
]
