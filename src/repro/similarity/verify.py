"""Verification phase: exact similarity checks with early termination.

After filtering, surviving candidate pairs are verified exactly.  For the
prefix-filter family the verification can resume *after* the matched prefix
positions and abort as soon as the remaining tokens cannot reach the
required overlap (the PPJoin-style optimization the Position Filter
enables) — :func:`verify_overlap_from` implements that.
"""

from __future__ import annotations

import numpy as np

from .measures import required_overlap

__all__ = ["verify_pair", "verify_overlap_from"]


def verify_pair(
    record_r: np.ndarray,
    record_s: np.ndarray,
    threshold: float,
    metric: str = "jaccard",
) -> bool:
    """Exact check ``SIM(r, s) >= threshold`` with overlap early termination."""
    needed = required_overlap(record_r.size, record_s.size, threshold, metric)
    return (
        verify_overlap_from(record_r, record_s, 0, 0, 0, needed) >= needed
    )


def verify_overlap_from(
    record_r: np.ndarray,
    record_s: np.ndarray,
    position_r: int,
    position_s: int,
    seed_overlap: int,
    needed: int,
) -> int:
    """Overlap of two sorted arrays starting at given positions.

    ``seed_overlap`` counts matches already found in the prefixes.  The merge
    aborts (returning a value < ``needed``) as soon as
    ``current + remaining < needed`` — the suffix cannot make up the deficit.
    """
    i, j = position_r, position_s
    nr, ns = record_r.size, record_s.size
    count = seed_overlap
    while i < nr and j < ns:
        remaining = min(nr - i, ns - j)
        if count + remaining < needed:
            return count  # certified failure: not enough tokens left
        a, b = record_r[i], record_s[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count
