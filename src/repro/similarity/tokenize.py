"""Signature generation: tokenizers and the global token order.

Strings become *signature sets* before filtering (Section 2.1): q-grams for
character-level data (DBLP 3-grams, DNA 6-grams) or whitespace tokens for
word-level data (Tweet).  Prefix-filter-family algorithms additionally need
a *global order* O over tokens — ascending document frequency, so prefixes
hold the rarest tokens and generate the fewest candidates (Section 3.1.2).

:class:`TokenizedCollection` holds the per-record sorted token-id arrays all
search and join engines consume.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "qgrams",
    "word_tokens",
    "TokenDictionary",
    "TokenizedCollection",
    "tokenize_collection",
]


def qgrams(text: str, q: int) -> List[str]:
    """Distinct character q-grams of ``text`` (set semantics, per the paper).

    Strings shorter than ``q`` contribute themselves as a single signature so
    every non-empty record has at least one token.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if len(text) < q:
        return [text] if text else []
    seen = dict.fromkeys(text[i : i + q] for i in range(len(text) - q + 1))
    return list(seen)


def word_tokens(text: str) -> List[str]:
    """Distinct whitespace-delimited tokens (the paper's Tweet tokenizer)."""
    return list(dict.fromkeys(text.split()))


class TokenDictionary:
    """Token string <-> integer id mapping with a frequency-based global order.

    Ids are assigned by *ascending document frequency* (ties broken by the
    token string), so sorting a record's token ids sorts them by the global
    order O — the prefix of the sorted array is exactly the prefix-filter
    prefix.
    """

    def __init__(self, token_sets: Sequence[Sequence[str]]) -> None:
        frequency: Counter = Counter()
        for tokens in token_sets:
            frequency.update(tokens)
        ranked = sorted(frequency.items(), key=lambda item: (item[1], item[0]))
        self._token_to_id: Dict[str, int] = {
            token: index for index, (token, _) in enumerate(ranked)
        }
        self._id_to_token: List[str] = [token for token, _ in ranked]
        self._frequencies: List[int] = [count for _, count in ranked]

    @classmethod
    def from_id_order(
        cls, tokens: Sequence[str], frequencies: Sequence[int]
    ) -> "TokenDictionary":
        """Rebuild a dictionary whose id order is already decided.

        The persistence layer (:mod:`repro.storage`) saves the token list
        in id order; re-deriving ids from re-counted frequencies could
        break ties differently and silently renumber every posting list,
        so a loaded dictionary restores the saved order verbatim.
        """
        if len(tokens) != len(frequencies):
            raise ValueError(
                f"{len(tokens)} tokens but {len(frequencies)} frequencies"
            )
        dictionary = cls([])
        dictionary._token_to_id = {
            token: index for index, token in enumerate(tokens)
        }
        dictionary._id_to_token = list(tokens)
        dictionary._frequencies = [int(count) for count in frequencies]
        if len(dictionary._token_to_id) != len(dictionary._id_to_token):
            raise ValueError("duplicate token in saved dictionary")
        return dictionary

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        return self._token_to_id[token]

    def token_of(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def frequency_of(self, token_id: int) -> int:
        return self._frequencies[token_id]

    def encode(self, tokens: Sequence[str], add_missing: bool = False) -> np.ndarray:
        """Sorted array of token ids; unknown tokens are dropped unless added.

        Dropping unknown query tokens is correct for search: a token absent
        from the collection has an empty posting list and cannot contribute
        overlap — but it still counts toward the query's signature size, which
        callers must take from the raw token list, not from this array.
        """
        if add_missing:
            for token in tokens:
                if token not in self._token_to_id:
                    self._token_to_id[token] = len(self._id_to_token)
                    self._id_to_token.append(token)
                    self._frequencies.append(0)
        ids = [
            self._token_to_id[token]
            for token in tokens
            if token in self._token_to_id
        ]
        return np.asarray(sorted(ids), dtype=np.int64)


@dataclass
class TokenizedCollection:
    """A string collection converted to sorted token-id arrays."""

    strings: List[str]
    records: List[np.ndarray]
    dictionary: TokenDictionary
    mode: str
    q: int = 0
    lengths: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.lengths = np.asarray(
            [record.size for record in self.records], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_tokens(self) -> int:
        return len(self.dictionary)

    def tokenize(self, text: str) -> List[str]:
        """Raw signature tokens of an ad-hoc string under this collection's mode."""
        if self.mode == "qgram":
            return qgrams(text, self.q)
        return word_tokens(text)

    def encode_query(self, text: str) -> np.ndarray:
        """Sorted known-token ids of ``text`` (for probing the index)."""
        return self.dictionary.encode(self.tokenize(text))

    def signature_size(self, text: str) -> int:
        """|Sig(text)| including tokens unseen in the collection."""
        return len(self.tokenize(text))


def tokenize_collection(
    strings: Sequence[str], mode: str = "word", q: int = 3
) -> TokenizedCollection:
    """Tokenize ``strings`` and build the global-order dictionary.

    ``mode`` is ``"word"`` (whitespace tokens) or ``"qgram"`` (character
    q-grams of width ``q``).
    """
    if mode not in ("word", "qgram"):
        raise ValueError(f"mode must be 'word' or 'qgram', got {mode!r}")
    if mode == "qgram":
        token_sets = [qgrams(text, q) for text in strings]
    else:
        token_sets = [word_tokens(text) for text in strings]
    dictionary = TokenDictionary(token_sets)
    records = [dictionary.encode(tokens) for tokens in token_sets]
    return TokenizedCollection(
        strings=list(strings),
        records=records,
        dictionary=dictionary,
        mode=mode,
        q=q if mode == "qgram" else 0,
    )


def tokenize_pair(
    left: Sequence[str], right: Sequence[str], mode: str = "word", q: int = 3
) -> "tuple[TokenizedCollection, TokenizedCollection]":
    """Tokenize two collections under one shared global order.

    An R-S join needs both sides encoded against the same token dictionary
    (and the same frequency-based order O), so prefixes are comparable
    across collections.  Frequencies are counted over the union.
    """
    if mode not in ("word", "qgram"):
        raise ValueError(f"mode must be 'word' or 'qgram', got {mode!r}")
    tokenizer = (lambda s: qgrams(s, q)) if mode == "qgram" else word_tokens
    left_sets = [tokenizer(text) for text in left]
    right_sets = [tokenizer(text) for text in right]
    dictionary = TokenDictionary(left_sets + right_sets)
    effective_q = q if mode == "qgram" else 0
    collections = []
    for strings, token_sets in ((left, left_sets), (right, right_sets)):
        collections.append(
            TokenizedCollection(
                strings=list(strings),
                records=[dictionary.encode(tokens) for tokens in token_sets],
                dictionary=dictionary,
                mode=mode,
                q=effective_q,
            )
        )
    return collections[0], collections[1]
