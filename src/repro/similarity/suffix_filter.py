"""The PPJoin+ suffix filter (Xiao et al.).

Section 3.1.3 notes that "the filtering power of the Position Filter can be
further enhanced by considering the suffix of the strings" — that
enhancement is PPJoin+'s suffix filter, implemented here.

After a prefix match, the candidate pair's *suffixes* (tokens after the
probing prefixes) must still contribute enough overlap.  The filter upper-
bounds that overlap without merging: pick the median token of one suffix,
split both suffixes around it (binary search), and recurse on the two
halves — overlap across the split point is impossible because both arrays
are sorted under the same global order.  Recursion depth is capped
(``MAX_DEPTH``), trading pruning power for constant cost, exactly as in the
PPJoin+ paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["suffix_overlap_bound", "MAX_DEPTH"]

#: recursion cap used by PPJoin+ (depth 2 probes at most 3 median tokens).
MAX_DEPTH = 2


def suffix_overlap_bound(
    left: np.ndarray,
    right: np.ndarray,
    depth: int = 0,
    max_depth: int = MAX_DEPTH,
) -> int:
    """Upper bound on ``|left ∩ right|`` for sorted token arrays.

    Cheap (O(2^max_depth) binary searches) and sound: never below the true
    overlap.  ``left``/``right`` are the candidate pair's suffixes.
    """
    size_left, size_right = int(left.size), int(right.size)
    if size_left == 0 or size_right == 0:
        return 0
    if depth >= max_depth:
        return min(size_left, size_right)
    # probe the median of the longer side for a balanced split
    if size_left < size_right:
        left, right = right, left
        size_left, size_right = size_right, size_left
    mid = size_left // 2
    pivot = int(left[mid])
    # right side: tokens < pivot | (pivot?) | tokens > pivot
    position = int(np.searchsorted(right, pivot, side="left"))
    pivot_found = position < size_right and int(right[position]) == pivot
    low_bound = suffix_overlap_bound(
        left[:mid], right[:position], depth + 1, max_depth
    )
    high_bound = suffix_overlap_bound(
        left[mid + 1 :],
        right[position + (1 if pivot_found else 0) :],
        depth + 1,
        max_depth,
    )
    return low_bound + high_bound + (1 if pivot_found else 0)
