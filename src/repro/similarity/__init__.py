"""Similarity substrate: tokenization, measures, verification.

Everything the filter-and-verification frameworks need that is not about
posting lists: signature generation (q-grams / word tokens with the global
frequency order), the Jaccard/Cosine/Dice measure algebra (required overlap,
length bounds, prefix lengths), banded edit distance, and exact verification
with early termination.
"""

from .edit_distance import edit_distance, qgram_lower_bound, within_edit_distance
from .measures import (
    cosine,
    dice,
    index_prefix_length,
    jaccard,
    length_bounds,
    overlap,
    prefix_length,
    required_overlap,
)
from .tokenize import (
    TokenDictionary,
    TokenizedCollection,
    qgrams,
    tokenize_collection,
    tokenize_pair,
    word_tokens,
)
from .verify import verify_overlap_from, verify_pair

__all__ = [
    "qgrams",
    "word_tokens",
    "TokenDictionary",
    "TokenizedCollection",
    "tokenize_collection",
    "tokenize_pair",
    "overlap",
    "jaccard",
    "cosine",
    "dice",
    "required_overlap",
    "length_bounds",
    "prefix_length",
    "index_prefix_length",
    "edit_distance",
    "within_edit_distance",
    "qgram_lower_bound",
    "verify_pair",
    "verify_overlap_from",
]
