"""Set-based similarity measures and their filtering algebra.

Implements the metrics the paper targets (Jaccard, Cosine, Dice, Overlap)
over sorted token-id arrays, plus the bound arithmetic every filter uses:

* required overlap (Equation 3.1 generalized per metric),
* candidate length ranges,
* prefix lengths (Lemma 1).

All formulas follow the standard prefix-filtering literature (Chaudhuri et
al., Xiao et al.) the paper builds on.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "overlap",
    "jaccard",
    "cosine",
    "dice",
    "required_overlap",
    "length_bounds",
    "prefix_length",
    "index_prefix_length",
]

_METRICS = ("jaccard", "cosine", "dice")


def overlap(left: np.ndarray, right: np.ndarray) -> int:
    """|left ∩ right| for sorted unique id arrays (linear merge)."""
    i = j = count = 0
    nl, nr = left.size, right.size
    lv, rv = left, right
    while i < nl and j < nr:
        a, b = lv[i], rv[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


def jaccard(left: np.ndarray, right: np.ndarray) -> float:
    """|L ∩ R| / |L ∪ R|; empty-vs-empty is defined as 1.0."""
    if left.size == 0 and right.size == 0:
        return 1.0
    shared = overlap(left, right)
    return shared / (left.size + right.size - shared)


def cosine(left: np.ndarray, right: np.ndarray) -> float:
    """|L ∩ R| / sqrt(|L| * |R|) (set semantics)."""
    if left.size == 0 or right.size == 0:
        return 1.0 if left.size == right.size else 0.0
    return overlap(left, right) / math.sqrt(left.size * right.size)


def dice(left: np.ndarray, right: np.ndarray) -> float:
    """2 |L ∩ R| / (|L| + |R|)."""
    if left.size == 0 and right.size == 0:
        return 1.0
    return 2 * overlap(left, right) / (left.size + right.size)


def _check_metric(metric: str) -> None:
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")


def required_overlap(
    size_r: int, size_s: int, threshold: float, metric: str = "jaccard"
) -> int:
    """Minimum |Sig(r) ∩ Sig(s)| for SIM(r, s) >= threshold.

    For Jaccard this is Equation 3.1: ``ceil(t/(1+t) * (|r| + |s|))``.
    """
    _check_metric(metric)
    if metric == "jaccard":
        bound = threshold / (1 + threshold) * (size_r + size_s)
    elif metric == "cosine":
        bound = threshold * math.sqrt(size_r * size_s)
    else:  # dice
        bound = threshold / 2 * (size_r + size_s)
    return max(1, math.ceil(bound - 1e-9))


def length_bounds(size: int, threshold: float, metric: str = "jaccard") -> "tuple[int, int]":
    """Inclusive range of |Sig(s)| a record may have to match a |Sig(r)| = size query."""
    _check_metric(metric)
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if metric == "jaccard":
        low, high = threshold * size, size / threshold
    elif metric == "cosine":
        low, high = threshold * threshold * size, size / (threshold * threshold)
    else:  # dice
        low = threshold * size / (2 - threshold)
        high = size * (2 - threshold) / threshold
    return max(1, math.ceil(low - 1e-9)), math.floor(high + 1e-9)


def prefix_length(size: int, threshold: float, metric: str = "jaccard") -> int:
    """Probing-prefix length (Lemma 1 for Jaccard: ``floor((1 - t)|s|) + 1``).

    Two similar strings must share at least one token within each other's
    prefix of this length under the global order.
    """
    _check_metric(metric)
    if size == 0:
        return 0
    if metric == "jaccard":
        keep = math.ceil(threshold * size - 1e-9)
    elif metric == "cosine":
        keep = math.ceil(threshold * threshold * size - 1e-9)
    else:  # dice
        keep = math.ceil(threshold * size / (2 - threshold) - 1e-9)
    return min(size, size - keep + 1)


def index_prefix_length(size: int, threshold: float, metric: str = "jaccard") -> int:
    """Indexing-prefix length for self-joins.

    For a self-join it suffices to index ``|s| - ceil(2t/(1+t) |s|) + 1``
    tokens (Jaccard; Xiao et al.): both sides of a pair are probed, so the
    indexed prefix can assume the partner is at least as long.
    """
    _check_metric(metric)
    if size == 0:
        return 0
    if metric == "jaccard":
        keep = math.ceil(2 * threshold / (1 + threshold) * size - 1e-9)
    elif metric == "cosine":
        keep = math.ceil(threshold * size - 1e-9)
    else:  # dice
        keep = math.ceil(threshold * size / (2 - threshold) - 1e-9)
    return max(0, min(size, size - keep + 1))
