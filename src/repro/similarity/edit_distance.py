"""Edit distance: banded verification and the q-gram count bound.

The AOL experiments use edit distance: search/join answers are pairs with
``ed(r, s) <= delta``.  Verification uses the classic banded (Ukkonen)
dynamic program — O(delta * min(|r|, |s|)) — with an early exit as soon as
every cell in a band row exceeds the threshold.

The count filter for edit distance (Gravano et al.) comes from q-gram
destruction: one edit operation destroys at most ``q`` q-grams, so
``ed(r, s) <= delta`` implies the strings share at least
``max(|r|, |s|) - q + 1 - q * delta`` positional-free q-grams.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["edit_distance", "within_edit_distance", "qgram_lower_bound"]

_INF = float("inf")


def edit_distance(left: str, right: str, max_distance: Optional[int] = None) -> int:
    """Levenshtein distance; with ``max_distance`` the band is pruned.

    When the true distance exceeds ``max_distance`` the returned value is
    ``max_distance + 1`` (a certified "too far"), which is all the filters
    need and keeps verification O(delta * n).
    """
    if left == right:
        return 0
    if len(left) > len(right):
        left, right = right, left
    n, m = len(left), len(right)
    if max_distance is not None:
        if m - n > max_distance:
            return max_distance + 1
        band = max_distance
    else:
        band = m

    previous = list(range(m + 1))
    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        current = [i] + [0] * m
        if lo > 1:
            current[lo - 1] = band + 1  # outside the band: unreachable
        row_min = current[0] if lo == 1 else band + 1
        char_left = left[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if char_left == right[j - 1] else 1
            value = previous[j - 1] + cost
            if previous[j] + 1 < value:
                value = previous[j] + 1
            if current[j - 1] + 1 < value:
                value = current[j - 1] + 1
            current[j] = value
            if value < row_min:
                row_min = value
        if hi < m:
            current[hi + 1 :] = [band + 1] * (m - hi)
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    distance = previous[m]
    if max_distance is not None and distance > max_distance:
        return max_distance + 1
    return distance


def within_edit_distance(left: str, right: str, threshold: int) -> bool:
    """``ed(left, right) <= threshold`` with banded early termination."""
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    return edit_distance(left, right, max_distance=threshold) <= threshold


def qgram_lower_bound(length_r: int, length_s: int, q: int, threshold: int) -> int:
    """Count-filter bound: minimum shared q-grams if ``ed <= threshold``.

    May be zero or negative for short strings / loose thresholds, in which
    case the count filter cannot prune and callers must fall back to the
    length filter alone.
    """
    longest = max(length_r, length_s)
    return longest - q + 1 - q * threshold
