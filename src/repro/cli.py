"""Command-line interface: ``python -m repro <command>``.

Wraps the library for shell use on line-delimited text files (one record
per line):

* ``generate`` — write a synthetic dataset (DESIGN.md §2 stand-ins),
* ``stats``    — per-scheme index sizes and compression ratios for a corpus,
* ``index``    — build and persist a compressed inverted index (a
  directory bundle, or the legacy ``.npz`` for ``.npz`` output paths),
* ``search``   — query a corpus (Jaccard or edit distance), optionally
  through a persisted index (``--mmap`` serves bundles zero-copy),
* ``serve``    — HTTP serving layer over an index: concurrent
  ``POST /search`` requests are coalesced into batch engine calls,
* ``top``      — live terminal dashboard over a serving process's
  ``/metrics`` (per-route rates, p50/p99, coalescing, gauges),
* ``compact``  — seal a dynamic bundle's online lists into offline CSS
  blocks (the DP re-partition),
* ``join``     — self-join a corpus and print the similar pairs.

Every command prints to stdout and exits non-zero on bad arguments, so the
tool composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .core.framework import OFFLINE_SCHEMES, ONLINE_SCHEMES
from .datasets import dataset_names, load_dataset
from .engine import ShardedEngine, SimilarityEngine
from .obs import (
    METRICS,
    TRACER,
    dump_profile,
    dump_traces,
    load_traces,
    profile_report,
    profile_to_markdown,
    render_trace_tree,
    to_prometheus,
    validate_profile,
)
from .join import (
    CountFilterJoin,
    EDCountFilterJoin,
    PositionFilterJoin,
    PrefixFilterJoin,
    SegmentFilterJoin,
)
from .search import InvertedIndex
from .similarity import tokenize_collection

__all__ = ["main", "build_parser"]

_JOIN_FILTERS = {
    "count": CountFilterJoin,
    "prefix": PrefixFilterJoin,
    "position": PositionFilterJoin,
    "segment": SegmentFilterJoin,
    "edcount": EDCountFilterJoin,
}


def _read_lines(path: str) -> List[str]:
    """Corpus lines with positions preserved: record id == 0-based line number.

    Blank lines become empty records (no signatures, so they can never
    match) instead of being dropped — dropping them used to shift every
    subsequent record id relative to the source file, making ``search`` /
    ``join`` output untraceable back to the corpus.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    blanks = sum(1 for line in lines if not line.strip())
    if blanks:
        print(
            f"warning: {path}: {blanks} blank line(s) kept as empty records "
            "so record ids keep matching line numbers",
            file=sys.stderr,
        )
    return lines


def _integral_threshold(value: float, what: str) -> Optional[int]:
    """``value`` as an edit-distance threshold, or ``None`` after an error.

    Delegates to :func:`repro.search.edsearch.normalize_delta` — the same
    check the searchers run — so the CLI and the engines reject a
    fractional edit distance identically instead of truncating it.
    """
    from .search.edsearch import normalize_delta

    try:
        return normalize_delta(value)
    except ValueError:
        print(
            f"error: {what} thresholds are edit distances and must be "
            f"integral; got {value}"
        )
        return None


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="enable instrumentation and dump a JSON profile report to PATH "
        "(or stdout when no path is given)",
    )


def _start_profile(args) -> bool:
    """Reset + enable the global registry when ``--profile`` was requested."""
    if getattr(args, "profile", None) is None:
        return False
    METRICS.reset()
    METRICS.enabled = True
    return True


def _emit_profile(args, **meta) -> None:
    """Disable the registry and write the profile document."""
    METRICS.enabled = False
    report = profile_report(meta={"command": args.command, **meta})
    text = dump_profile(report, args.profile)
    if args.profile in ("-", ""):  # empty PATH falls back to stdout
        print(text)
    else:
        print(f"profile written to {args.profile}")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="collect per-query trace trees and dump them to FILE as JSONL "
        "(render with `repro stats FILE`)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of queries to trace, in [0, 1] (default: 1.0)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-query threshold: traces at least this slow are always "
        "kept and reported on stderr, regardless of --trace-sample",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=256,
        metavar="N",
        help="in-memory trace ring size; only the most recent N sampled "
        "traces are retained (default: 256)",
    )


def _start_trace(args) -> bool:
    """Configure + enable the global tracer when tracing was requested."""
    if (
        getattr(args, "trace", None) is None
        and getattr(args, "slow_ms", None) is None
    ):
        return False
    if not 0.0 <= args.trace_sample <= 1.0:
        print(
            f"error: --trace-sample must be in [0, 1], got {args.trace_sample}"
        )
        return False
    TRACER.configure(
        enabled=True,
        sample_rate=args.trace_sample,
        slow_ms=args.slow_ms,
        buffer_size=args.trace_buffer,
    )
    TRACER.clear()
    return True


def _emit_trace(args) -> None:
    """Disable the tracer, dump retained traces, report slow queries."""
    TRACER.enabled = False
    for document in TRACER.slow_log:
        meta = document.get("meta") or {}
        rendered = ", ".join(f"{k}={v!r}" for k, v in meta.items())
        print(
            f"slow query ({1000 * document['seconds']:.1f} ms"
            f" >= {args.slow_ms} ms): {rendered}",
            file=sys.stderr,
        )
    traces = TRACER.drain()
    if args.trace:
        count = dump_traces(traces, args.trace)
        dropped = TRACER.dropped
        suffix = f" ({dropped} sampled out)" if dropped else ""
        print(f"{count} trace(s) written to {args.trace}{suffix}")


def _add_tokenize_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mode",
        choices=("word", "qgram"),
        default="word",
        help="signature tokenizer (default: word)",
    )
    parser.add_argument(
        "--q", type=int, default=3, help="q-gram width for --mode qgram"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSS: string similarity search/join over compressed indexes",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic dataset to a file"
    )
    generate.add_argument("dataset", choices=dataset_names())
    generate.add_argument("output", help="output path (one record per line)")
    generate.add_argument("--cardinality", type=int, default=0)

    stats = commands.add_parser(
        "stats",
        help="index sizes for a corpus, or render a profile/trace dump",
        description="With a text corpus: per-scheme index sizes and "
        "compression ratios.  With a --profile JSON document: render it as "
        "Prometheus text exposition, markdown or JSON.  With a --trace "
        "JSONL dump: render the per-query span trees.",
    )
    stats.add_argument(
        "corpus",
        help="text corpus (one record per line), a --profile JSON "
        "document, or a --trace JSONL dump",
    )
    _add_tokenize_args(stats)
    stats.add_argument(
        "--schemes",
        default="uncomp,pfordelta,milc,css",
        help="comma-separated offline schemes (corpus mode)",
    )
    stats.add_argument(
        "--format",
        choices=("auto", "table", "prometheus", "markdown", "json", "tree"),
        default="auto",
        help="rendering: profiles default to prometheus, trace dumps to "
        "tree, corpora to the size table (default: auto)",
    )
    stats.add_argument(
        "--check",
        action="store_true",
        help="validate a profile document against the obs schema before "
        "rendering (exit 1 on violation)",
    )
    _add_profile_arg(stats)

    index = commands.add_parser(
        "index", help="build and persist a compressed inverted index"
    )
    index.add_argument("corpus")
    index.add_argument(
        "output",
        help="output path: a bundle directory (mmap-able, self-contained), "
        "or the legacy monolithic format for paths ending in .npz",
    )
    _add_tokenize_args(index)
    index.add_argument(
        "--scheme", choices=sorted(OFFLINE_SCHEMES), default="css"
    )

    search = commands.add_parser("search", help="similarity search a corpus")
    search.add_argument("corpus")
    search.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query string (omit when using --queries-file)",
    )
    search.add_argument(
        "--queries-file",
        default=None,
        metavar="PATH",
        help="batch mode: answer every line of PATH as a query",
    )
    search.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size for --queries-file batches (default: 1, serial)",
    )
    _add_tokenize_args(search)
    search.add_argument(
        "--scheme", choices=sorted(OFFLINE_SCHEMES), default="css"
    )
    search.add_argument(
        "--metric", choices=("jaccard", "cosine", "dice", "ed"), default="jaccard"
    )
    search.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="similarity threshold (or max edits for --metric ed)",
    )
    search.add_argument(
        "--algorithm",
        choices=("scancount", "mergeskip", "divideskip"),
        default="mergeskip",
    )
    search.add_argument(
        "--load-index",
        default=None,
        help="persisted index to reuse: a bundle directory (saved with "
        "SimilarityEngine.save / ShardedEngine.save / `repro index OUT`) "
        "or a legacy .npz file",
    )
    search.add_argument(
        "--mmap",
        action="store_true",
        help="serve a --load-index bundle zero-copy off memory-mapped "
        "arrays (static bundles only; workers share the page cache)",
    )
    search.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the index into N shards served by a fan-out/merge "
        "engine (default: 1, monolithic; results are identical)",
    )
    search.add_argument(
        "--routing",
        choices=("contiguous", "hash"),
        default="contiguous",
        help="shard routing mode for --shards > 1 (default: contiguous)",
    )
    _add_profile_arg(search)
    _add_trace_args(search)

    serve = commands.add_parser(
        "serve",
        help="serve an index over HTTP with request coalescing",
        description="Boot the repro.serve HTTP layer in front of an index: "
        "concurrent POST /search requests are coalesced into batch engine "
        "calls (bit-identical answers), with /metrics and /healthz "
        "alongside. PATH is an index bundle directory written by `repro "
        "index CORPUS OUT` (or *.save()); a plain text corpus also works "
        "and is indexed on the fly at boot.",
    )
    serve.add_argument(
        "path",
        help="index bundle directory (`repro index` output) or a "
        "line-delimited corpus file",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--metric", choices=("jaccard", "cosine", "dice", "ed"), default="jaccard"
    )
    serve.add_argument(
        "--algorithm",
        choices=("scancount", "mergeskip", "divideskip"),
        default="mergeskip",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="serve a bundle zero-copy off memory-mapped arrays "
        "(bundle directories only)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="for corpus-file PATHs: partition the freshly built index "
        "into N shards (default: 1, monolithic)",
    )
    serve.add_argument(
        "--scheme",
        choices=sorted(OFFLINE_SCHEMES),
        default="css",
        help="compression scheme for corpus-file PATHs (default: css)",
    )
    _add_tokenize_args(serve)
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long a request may wait for coalescing batchmates "
        "before its batch dispatches anyway (default: 2.0)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="dispatch a batch as soon as this many compatible requests "
        "are pending (default: 64)",
    )
    serve.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="worker pool size for the coalesced search_batch calls "
        "(default: 1, batch kernels on the dispatcher thread)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="trace coalesced batches at least this slow into the "
        "tracer's slow-query log",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="shed POST /search with 429 + Retry-After once this many "
        "requests are queued ahead of the engine (default: unbounded)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="keep this fraction of request/batch traces for GET "
        "/debug/trace (default: 1.0; 0 disables sampling, slow "
        "traces are always kept when --slow-ms is set)",
    )

    top = commands.add_parser(
        "top",
        help="live terminal dashboard over a serving process's /metrics",
        description="Poll a repro serve endpoint's Prometheus exposition "
        "and render per-route request rates, error counts and p50/p99 "
        "latency, plus coalescing and runtime gauges — `top` for the "
        "serving stack. TARGET is the server's base URL (http://...) or "
        "a file holding a saved /metrics exposition (rendered once).",
    )
    top.add_argument(
        "target",
        help="server base URL (e.g. http://127.0.0.1:8080) or a file "
        "containing Prometheus exposition text",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default: 2.0)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="stop after N renders (default: 0, poll until ctrl-c)",
    )

    join = commands.add_parser("join", help="similarity self-join a corpus")
    join.add_argument("corpus")
    _add_tokenize_args(join)
    join.add_argument("--filter", choices=sorted(_JOIN_FILTERS), default="position")
    join.add_argument(
        "--scheme", choices=sorted(ONLINE_SCHEMES), default="adapt"
    )
    join.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="similarity threshold (or max edits for --filter segment)",
    )
    join.add_argument(
        "--show", type=int, default=10, help="print at most this many pairs"
    )
    _add_profile_arg(join)
    _add_trace_args(join)

    compact = commands.add_parser(
        "compact",
        help="re-partition a dynamic bundle's online lists into offline "
        "CSS blocks (Algorithm 2's DP), in place or to a new bundle",
    )
    compact.add_argument(
        "index", help="a dynamic index bundle or sharded bundle directory"
    )
    compact.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the compacted bundle here instead of in place",
    )

    check = commands.add_parser(
        "check", help="validate the integrity of a persisted index"
    )
    check.add_argument(
        "index",
        help="an index bundle / sharded bundle directory, a .npz file "
        "written by `repro index`, or a legacy sharded .npz directory",
    )
    check.add_argument(
        "corpus",
        nargs="?",
        default=None,
        help="optionally, the corpus the index was built from (binds the "
        "loaded index to it; structural checks run without one)",
    )
    _add_tokenize_args(check)

    lint = commands.add_parser(
        "lint", help="run the repo-specific static analysis rules (RA01-RA13)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package "
        "plus the tests/ and benchmarks/ trees of a source checkout)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run, e.g. RA01,RA07 (default all)",
    )
    lint.add_argument(
        "--project",
        action="store_true",
        help="build the whole-program index and run the project rules "
        "(RA10-RA13: lock discipline, async blocking, fork safety, "
        "telemetry manifest) as well",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="findings as human-readable lines, a schema-stable JSON "
        "document, or GitHub Actions ::error annotations",
    )
    lint.add_argument(
        "--explain",
        action="store_true",
        help="print the rule table and exit",
    )

    report = commands.add_parser(
        "report", help="regenerate the headline paper tables as markdown"
    )
    report.add_argument("-o", "--output", default="report.md")
    report.add_argument("--scale", type=float, default=0.25)
    report.add_argument("--queries", type=int, default=20)
    report.add_argument(
        "--profile",
        action="store_true",
        help="append an instrumentation section to the report",
    )
    return parser


def _cmd_generate(args) -> int:
    dataset = load_dataset(args.dataset, cardinality=args.cardinality)
    Path(args.output).write_text(
        "\n".join(dataset.strings) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {len(dataset.strings)} records to {args.output} "
        f"(avg length {dataset.statistics['average_length']:.1f})"
    )
    return 0


def _render_profile_stats(args, document) -> int:
    """Render a persisted ``--profile`` document (``repro stats`` on JSON)."""
    if args.check:
        try:
            validate_profile(document)
        except ValueError as error:
            print(f"error: invalid profile document: {error}")
            return 1
        print(f"profile ok: schema {document['schema']}", file=sys.stderr)
    style = args.format
    if style in ("auto", "prometheus"):
        print(to_prometheus(document), end="")
    elif style == "markdown":
        print(profile_to_markdown(document), end="")
    elif style == "json":
        print(json.dumps(document, indent=2, sort_keys=True, default=float))
    else:
        print(f"error: --format {style} does not apply to a profile document")
        return 2
    return 0


def _render_trace_stats(args, path) -> int:
    """Render a ``--trace`` JSONL dump (``repro stats`` on trace files)."""
    try:
        traces = load_traces(path)
    except ValueError as error:
        print(f"error: {error}")
        return 1
    style = args.format
    if style in ("auto", "tree"):
        for document in traces:
            print(render_trace_tree(document))
            print()
        slow = sum(1 for document in traces if document.get("slow"))
        print(f"{len(traces)} trace(s), {slow} slow", file=sys.stderr)
    elif style == "json":
        print(json.dumps(traces, indent=2, sort_keys=True, default=float))
    else:
        print(f"error: --format {style} does not apply to a trace dump")
        return 2
    return 0


def _cmd_stats(args) -> int:
    # dispatch on content: a profile document or a trace dump renders the
    # telemetry; anything else is a corpus (the original size table)
    text = Path(args.corpus).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and "schema" in document:
            return _render_profile_stats(args, document)
        try:
            probe = json.loads(stripped.splitlines()[0])
        except json.JSONDecodeError:
            probe = None
        if isinstance(probe, dict) and "trace_id" in probe:
            return _render_trace_stats(args, args.corpus)
        if document is not None or probe is not None:
            print(
                "error: JSON input is neither a profile document (no "
                "'schema' key) nor a JSONL trace dump (no 'trace_id' key)"
            )
            return 2
    if args.format not in ("auto", "table"):
        print(f"error: --format {args.format} requires a profile/trace input")
        return 2
    strings = text.splitlines()
    blanks = sum(1 for line in strings if not line.strip())
    if blanks:
        print(
            f"warning: {args.corpus}: {blanks} blank line(s) kept as empty "
            "records so record ids keep matching line numbers",
            file=sys.stderr,
        )
    collection = tokenize_collection(strings, mode=args.mode, q=args.q)
    profiling = _start_profile(args)
    print(
        f"{len(strings)} records, {collection.num_tokens} distinct signatures"
    )
    print(f"{'scheme':>10} | {'size KB':>9} | {'ratio':>6} | {'build s':>8}")
    print("-" * 42)
    for scheme in args.schemes.split(","):
        scheme = scheme.strip()
        index = InvertedIndex(collection, scheme=scheme)
        print(
            f"{scheme:>10} | {index.size_bits() / 8 / 1024:>9.1f} | "
            f"{index.compression_ratio():>6.2f} | {index.build_seconds:>8.3f}"
        )
    if profiling:
        _emit_profile(args, corpus=args.corpus, schemes=args.schemes)
    return 0


def _cmd_index(args) -> int:
    strings = _read_lines(args.corpus)
    collection = tokenize_collection(strings, mode=args.mode, q=args.q)
    index = InvertedIndex(collection, scheme=args.scheme)
    if str(args.output).endswith(".npz"):
        # the legacy monolithic container: posting lists only, needs the
        # corpus again at load time, cannot be memory-mapped
        from .storage.legacy import dump_index_npz

        dump_index_npz(index, args.output)
    else:
        from .storage import save_index

        save_index(index, args.output)
    print(
        f"indexed {len(strings)} records under {args.scheme}: "
        f"{len(index)} lists, {index.size_mb():.3f} MB (paper accounting), "
        f"saved to {args.output}"
    )
    return 0


def _cmd_search(args) -> int:
    if (args.query is None) == (args.queries_file is None):
        print("error: provide exactly one of a query or --queries-file")
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}")
        return 2
    if args.shards > 1 and args.load_index:
        print(
            "error: --load-index holds a persisted index; --shards N "
            "builds a partitioned one (save one with ShardedEngine.save "
            "and point --load-index at the bundle directory)"
        )
        return 2
    if args.metric == "ed":
        threshold = _integral_threshold(args.threshold, "--metric ed")
        if threshold is None:
            return 2
    else:
        threshold = args.threshold
    if args.mmap and not args.load_index:
        print(
            "error: --mmap applies to --load-index bundle directories; "
            "persist one first with `repro index CORPUS OUT` (or "
            "SimilarityEngine.save) and pass --load-index OUT"
        )
        return 2
    if args.mmap and not Path(args.load_index).is_dir():
        print(
            f"error: --mmap cannot serve {args.load_index}: the legacy "
            ".npz is a zip archive and cannot be memory-mapped. Migrate "
            "it to a bundle directory — rebuild with `repro index CORPUS "
            "OUT` (a non-.npz OUT writes the mmap-able bundle format) — "
            "and pass --load-index OUT"
        )
        return 2
    strings = _read_lines(args.corpus)
    mode = "qgram" if args.metric == "ed" else args.mode
    q = 2 if args.metric == "ed" and args.mode == "word" else args.q
    if args.load_index and Path(args.load_index).is_dir():
        # self-contained bundle: the collection rides inside it
        collection = None
    else:
        collection = tokenize_collection(strings, mode=mode, q=q)
    profiling = _start_profile(args)
    tracing = _start_trace(args)
    if args.shards > 1:
        engine_factory = lambda: ShardedEngine(  # noqa: E731
            collection,
            shards=args.shards,
            routing=args.routing,
            scheme=args.scheme,
            algorithm=args.algorithm,
            metric=args.metric,
        )
    elif args.load_index and Path(args.load_index).is_dir():
        from .storage.bundle import BUNDLE_KIND
        from .storage.legacy import read_manifest
        from .storage.sharded import SHARDED_BUNDLE_KIND

        kind = (read_manifest(args.load_index) or {}).get("kind")
        try:
            if kind == BUNDLE_KIND:
                engine = SimilarityEngine.open(
                    args.load_index,
                    mmap=args.mmap,
                    algorithm=args.algorithm,
                    metric=args.metric,
                )
            elif kind == SHARDED_BUNDLE_KIND:
                engine = ShardedEngine.open(
                    args.load_index,
                    mmap=args.mmap,
                    algorithm=args.algorithm,
                    metric=args.metric,
                )
            else:
                print(
                    f"error: {args.load_index} is not an index bundle "
                    f"(manifest kind {kind!r})"
                )
                return 1
        except ValueError as error:
            print(f"error: {error}")
            return 1
        engine_factory = lambda: engine  # noqa: E731
    else:
        if args.load_index:
            from .storage.legacy import load_index_npz

            try:
                index = load_index_npz(args.load_index, collection)
            except ValueError as error:
                print(f"error: {error}")
                return 1
        else:
            index = InvertedIndex(collection, scheme=args.scheme)
        engine_factory = lambda: SimilarityEngine(  # noqa: E731
            index=index, algorithm=args.algorithm, metric=args.metric
        )
    with engine_factory() as engine:
        if args.queries_file is not None:
            queries = _read_lines(args.queries_file)
            start = time.perf_counter()
            results = engine.search_batch(
                queries, threshold, workers=args.workers
            )
            elapsed = time.perf_counter() - start
            total = sum(len(result) for result in results)
            for position, result in enumerate(results):
                preview = " ".join(str(hit) for hit in result[:10])
                suffix = " ..." if len(result) > 10 else ""
                print(f"[{position}] {len(result)} hits: {preview}{suffix}")
            rate = len(results) / elapsed if elapsed > 0 else float("inf")
            print(
                f"{len(results)} queries, {total} total hits in "
                f"{elapsed:.2f} s ({rate:.1f} q/s, workers={args.workers})"
            )
        else:
            result = engine.search(args.query, threshold)
            print(f"{len(result)} hits in {1000 * result.seconds:.2f} ms:")
            for hit in result:
                print(f"  [{hit}] {strings[hit]}")
        cache_stats = engine.cache_stats()
    if tracing:
        _emit_trace(args)
    if profiling:
        _emit_profile(
            args,
            corpus=args.corpus,
            scheme=args.scheme,
            algorithm=args.algorithm,
            metric=args.metric,
            threshold=args.threshold,
            workers=args.workers,
            shards=args.shards,
            cache=cache_stats,
        )
    return 0


def _cmd_serve(args) -> int:
    from .serve import ServeApp, create_app
    from .serve.server import run as _run_server

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}")
        return 2
    path = Path(args.path)
    app_kwargs = dict(
        window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        batch_workers=args.batch_workers,
        slow_ms=args.slow_ms,
        max_pending=args.max_pending,
        trace_sample=args.trace_sample if args.trace_sample > 0 else None,
    )
    if path.is_dir():
        if args.shards > 1:
            print(
                "error: --shards applies to corpus-file PATHs; a bundle "
                "directory already fixed its shard count at save time"
            )
            return 2
        try:
            app = create_app(
                path,
                mmap=args.mmap,
                algorithm=args.algorithm,
                metric=args.metric,
                **app_kwargs,
            )
        except ValueError as error:
            print(f"error: {error}")
            return 1
    elif path.suffix == ".npz":
        print(
            f"error: cannot serve {path}: the legacy .npz holds posting "
            "lists only (no collection). Migrate it to a bundle directory "
            "— rebuild with `repro index CORPUS OUT` — and serve OUT"
        )
        return 2
    else:
        if args.mmap:
            print(
                "error: --mmap applies to bundle directories; persist one "
                "first with `repro index CORPUS OUT` and serve OUT"
            )
            return 2
        mode = "qgram" if args.metric == "ed" else args.mode
        q = 2 if args.metric == "ed" and args.mode == "word" else args.q
        collection = tokenize_collection(
            _read_lines(args.path), mode=mode, q=q
        )
        if args.shards > 1:
            engine = ShardedEngine(
                collection,
                shards=args.shards,
                scheme=args.scheme,
                algorithm=args.algorithm,
                metric=args.metric,
            )
        else:
            engine = SimilarityEngine(
                collection,
                scheme=args.scheme,
                algorithm=args.algorithm,
                metric=args.metric,
            )
        app = ServeApp(engine, **app_kwargs)
    print(
        f"serving {_describe_served(app)} on http://{args.host}:{args.port} "
        f"(window {args.batch_window_ms} ms, max batch {args.max_batch}) "
        "— ctrl-c stops"
    )
    try:
        _run_server(app, args.host, args.port)
    finally:
        app.close()
        app.engine.close()
    return 0


def _describe_served(app) -> str:
    engine = app.engine
    records = getattr(engine, "num_records", None)
    if records is None:
        records = len(engine.index.collection)
    shards = getattr(engine, "num_shards", 1)
    source = f" from {app.bundle_path}" if app.bundle_path else ""
    return (
        f"{records} records ({engine.metric}, "
        f"{shards} shard{'s' if shards != 1 else ''}){source}"
    )


# --------------------------------------------------------------------- #
# repro top: a terminal dashboard over a serving process's /metrics
# --------------------------------------------------------------------- #
_ROUTE_REQUESTS = re.compile(
    r"^repro_serve_route_(?P<route>.+)_requests_total$"
)
_BUCKET_SAMPLE = re.compile(r'^(?P<family>.+)_bucket\{le="(?P<le>[^"]+)"\}$')


def _histogram_quantile(
    samples: Dict[str, float], family: str, quantile: float
) -> Optional[float]:
    """A quantile's bucket upper bound from cumulative ``le`` buckets.

    The serve histograms are log2-bucketed, so the answer is the upper
    bound of the bucket the quantile falls in (the same estimate
    Prometheus's ``histogram_quantile`` would snap to); ``None`` when the
    family is absent or empty.
    """
    buckets: List[Tuple[float, float]] = []
    for key, value in samples.items():
        match = _BUCKET_SAMPLE.match(key)
        if match and match.group("family") == family:
            buckets.append((float(match.group("le")), value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    for upper, cumulative in buckets:
        if cumulative >= target:
            return upper
    return buckets[-1][0]


def _route_rows(
    samples: Dict[str, float],
    previous: Optional[Dict[str, float]],
    dt: Optional[float],
) -> List[tuple]:
    """Per-route RED rows: (route, total, rate, 5xx, p50, p99)."""
    rows = []
    for key in sorted(samples):
        match = _ROUTE_REQUESTS.match(key)
        if match is None:
            continue
        route = match.group("route")
        total = samples[key]
        rate = None
        if previous is not None and dt:
            rate = max(0.0, (total - previous.get(key, 0.0)) / dt)
        errors = sum(
            value
            for name, value in samples.items()
            if name.startswith(f"repro_serve_route_{route}_status_5")
        )
        family = f"repro_serve_route_{route}_latency_ms"
        rows.append(
            (
                route,
                total,
                rate,
                errors,
                _histogram_quantile(samples, family, 0.50),
                _histogram_quantile(samples, family, 0.99),
            )
        )
    return rows


def _format_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return ">2^63"
    return f"{value:.0f}"


def _render_top(
    samples: Dict[str, float],
    previous: Optional[Dict[str, float]],
    dt: Optional[float],
    target: str,
) -> str:
    """One dashboard frame from a parsed /metrics sample (pure; tested)."""
    lines = [f"repro top — {target}"]
    uptime = samples.get("repro_serve_uptime_seconds")
    rss = samples.get("repro_process_rss_bytes")
    pool = samples.get("repro_engine_pool_workers")
    summary = []
    if uptime is not None:
        summary.append(f"up {uptime:.0f}s")
    if rss:
        summary.append(f"rss {rss / (1 << 20):.1f} MiB")
    if pool is not None:
        summary.append(f"pool {pool:.0f}")
    cache_entries = samples.get("repro_engine_cache_entries")
    if cache_entries is not None:
        cache_bytes = samples.get("repro_engine_cache_bytes", 0.0)
        summary.append(
            f"cache {cache_entries:.0f} lists / {cache_bytes / 1024:.0f} KiB"
        )
    if summary:
        lines.append("  " + " · ".join(summary))
    requests = samples.get("repro_serve_requests_total", 0.0)
    batches = samples.get("repro_serve_batches_total", 0.0)
    ratio = requests / batches if batches else 0.0
    lines.append(
        f"  coalescing: {requests:.0f} requests in {batches:.0f} batches "
        f"(ratio {ratio:.2f}) · queue "
        f"{samples.get('repro_serve_queue_depth', 0.0):.0f} · in-flight "
        f"{samples.get('repro_serve_batch_inflight', 0.0):.0f} · shed "
        f"{samples.get('repro_serve_shed_total', 0.0):.0f}"
    )
    lines.append("")
    lines.append(
        f"  {'route':<14} {'req':>10} {'rate/s':>8} {'5xx':>6} "
        f"{'p50ms':>7} {'p99ms':>7}"
    )
    rows = _route_rows(samples, previous, dt)
    if not rows:
        lines.append("  (no per-route series yet — send a request)")
    for route, total, rate, errors, p50, p99 in rows:
        rate_text = f"{rate:.1f}" if rate is not None else "-"
        lines.append(
            f"  {route:<14} {total:>10.0f} {rate_text:>8} {errors:>6.0f} "
            f"{_format_ms(p50):>7} {_format_ms(p99):>7}"
        )
    return "\n".join(lines) + "\n"


def _cmd_top(args) -> int:
    from .obs.export import parse_prometheus

    target = args.target
    if not target.startswith(("http://", "https://")):
        path = Path(target)
        if not path.is_file():
            print(
                f"error: {target} is neither an http(s) URL nor a readable "
                "exposition file"
            )
            return 2
        print(_render_top(parse_prometheus(path.read_text()), None, None, target), end="")
        return 0

    import urllib.error
    import urllib.request

    url = target.rstrip("/") + "/metrics"
    previous: Optional[Dict[str, float]] = None
    previous_at: Optional[float] = None
    renders = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=10) as response:
                    text = response.read().decode()
            except (urllib.error.URLError, OSError) as error:
                print(f"error: cannot scrape {url}: {error}")
                return 1
            samples = parse_prometheus(text)
            now = time.monotonic()
            dt = now - previous_at if previous_at is not None else None
            frame = _render_top(samples, previous, dt, target)
            if sys.stdout.isatty():
                # clear + home, so the dashboard repaints in place
                print("\x1b[2J\x1b[H" + frame, end="", flush=True)
            else:
                print(frame, end="", flush=True)
            renders += 1
            if args.count and renders >= args.count:
                return 0
            previous, previous_at = samples, now
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_compact(args) -> int:
    from .storage.bundle import BUNDLE_KIND
    from .storage.legacy import read_manifest
    from .storage.sharded import SHARDED_BUNDLE_KIND

    target = Path(args.index)
    if not target.is_dir():
        print(
            f"error: {target} is not a bundle directory (the legacy .npz "
            "holds offline indexes, which are already optimally partitioned)"
        )
        return 2
    manifest = read_manifest(target)
    kind = (manifest or {}).get("kind")
    if kind not in (BUNDLE_KIND, SHARDED_BUNDLE_KIND):
        print(f"error: {target} is not an index bundle (manifest kind {kind!r})")
        return 2
    if not manifest.get("dynamic"):
        print(
            f"error: {target} holds a static (offline) index; compaction "
            "applies to dynamic bundles with online two-region lists"
        )
        return 2
    output = args.output or target
    try:
        if kind == BUNDLE_KIND:
            engine = SimilarityEngine.open(target, mmap=False)
            all_stats = [engine.compact()]
        else:
            engine = ShardedEngine.open(target, mmap=False)
            all_stats = engine.compact()
        engine.save(output)
    except ValueError as error:
        print(f"error: {error}")
        return 1
    lists = sum(stats.lists_compacted for stats in all_stats)
    skipped = sum(stats.lists_skipped for stats in all_stats)
    postings = sum(stats.postings for stats in all_stats)
    bits_before = sum(stats.bits_before for stats in all_stats)
    bits_after = sum(stats.bits_after for stats in all_stats)
    seconds = sum(stats.seconds for stats in all_stats)
    print(
        f"compacted {lists} lists ({skipped} skipped, {postings} postings) "
        f"in {seconds:.3f} s: {bits_before / 8 / 1024:.1f} KiB -> "
        f"{bits_after / 8 / 1024:.1f} KiB, saved to {output}"
    )
    return 0


def _cmd_check(args) -> int:
    from .compression.validate import check_index, check_path

    if args.corpus is None or Path(args.index).is_dir():
        # structural mode: bundles, sharded directories and saved .npz
        # files; bundles are self-contained so a corpus adds nothing
        issues = check_path(args.index)
        if issues:
            print(f"{len(issues)} integrity violations:")
            for issue in issues[:50]:
                print(f"  - {issue}")
            return 1
        print(f"ok: {args.index}, no violations")
        return 0

    strings = _read_lines(args.corpus)
    collection = tokenize_collection(strings, mode=args.mode, q=args.q)
    from .storage.legacy import load_index_npz

    try:
        index = load_index_npz(args.index, collection)
    except ValueError as error:
        # load-time validation rejected the file outright
        print("1 integrity violations:")
        print(f"  - {error}")
        return 1
    issues = check_index(index)
    if issues:
        print(f"{len(issues)} integrity violations:")
        for issue in issues[:50]:
            print(f"  - {issue}")
        return 1
    print(
        f"ok: {len(index.lists)} lists, {index.size_mb():.3f} MB, "
        "no violations"
    )
    return 0


def _cmd_lint(args) -> int:
    from .analysis import (
        format_violations,
        lint_paths,
        project_rule_table,
        rule_table,
    )

    if args.explain:
        for code, summary in rule_table():
            print(f"{code}  {summary}")
        for code, summary in project_rule_table():
            print(f"{code}* {summary}")
        print("(* = project rule; needs --project)")
        return 0
    select = args.select.split(",") if args.select else None
    try:
        violations, files_checked = lint_paths(
            args.paths or None, select, project=args.project
        )
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_violations(violations, args.format, files_checked))
    return 1 if violations else 0


def _cmd_report(args) -> int:
    from .bench.report import generate_report

    markdown = generate_report(
        scale=args.scale, query_count=args.queries, profile=args.profile
    )
    Path(args.output).write_text(markdown, encoding="utf-8")
    print(f"wrote {args.output} ({len(markdown.splitlines())} lines)")
    return 0


def _cmd_join(args) -> int:
    strings = _read_lines(args.corpus)
    if args.filter in ("segment", "edcount"):
        integral = _integral_threshold(
            args.threshold, f"--filter {args.filter}"
        )
        if integral is None:
            return 2
        join = _JOIN_FILTERS[args.filter](strings, scheme=args.scheme)
        threshold: float = integral
    else:
        collection = tokenize_collection(strings, mode=args.mode, q=args.q)
        join = _JOIN_FILTERS[args.filter](collection, scheme=args.scheme)
        threshold = args.threshold
    profiling = _start_profile(args)
    tracing = _start_trace(args)
    start = time.perf_counter()
    pairs = join.join(threshold)
    elapsed = time.perf_counter() - start
    stats = join.last_stats
    print(
        f"{len(pairs)} pairs in {elapsed:.2f} s — index "
        f"{stats.index_mb:.4f} MB over {stats.num_lists} lists "
        f"({stats.verifications} verifications)"
    )
    for left, right in pairs[: args.show]:
        print(f"  [{left}] {strings[left]}")
        print(f"  [{right}] {strings[right]}")
        print()
    if len(pairs) > args.show:
        print(f"  ... and {len(pairs) - args.show} more")
    if tracing:
        _emit_trace(args)
    if profiling:
        _emit_profile(
            args,
            corpus=args.corpus,
            filter=args.filter,
            scheme=args.scheme,
            threshold=threshold,
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "index": _cmd_index,
    "search": _cmd_search,
    "serve": _cmd_serve,
    "join": _cmd_join,
    "report": _cmd_report,
    "compact": _cmd_compact,
    "check": _cmd_check,
    "lint": _cmd_lint,
    "top": _cmd_top,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
