"""Seeded synthetic workloads standing in for the paper's corpora.

See DESIGN.md §2 for the substitution rationale: each generator reproduces
the signature regime (token skew, record length, duplication rate) of the
corresponding real dataset in Table 7.1.
"""

from .amazon import amazon_like
from .dna import dna_like
from .loader import (
    PAPER_CARDINALITIES,
    Dataset,
    dataset_names,
    default_cardinality,
    load_dataset,
    repro_scale,
)
from .synthetic import uniform_sets, zipf_sets
from .text import aol_like, dblp_like, tweet_like

__all__ = [
    "Dataset",
    "load_dataset",
    "dataset_names",
    "default_cardinality",
    "repro_scale",
    "PAPER_CARDINALITIES",
    "dblp_like",
    "tweet_like",
    "aol_like",
    "dna_like",
    "amazon_like",
    "zipf_sets",
    "uniform_sets",
]
