"""Synthetic stand-ins for the paper's text corpora (Table 7.1).

* :func:`dblp_like` — short bibliographic titles (avg ~12 tokens), indexed
  as 3-grams in the paper's search experiments;
* :func:`tweet_like` — mid-length posts (avg ~21 tokens), whitespace
  tokenized;
* :func:`aol_like` — short query-log strings (avg ~21 characters) with
  typo-injected near-duplicates, used for the edit-distance experiments.

Each generator is deterministic given its seed and plants near-duplicate
records so similarity joins and searches have non-trivial answers — mirroring
the redundancy (paper versions, retweets, query reformulations) that makes
the real corpora interesting.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ._words import make_word, zipf_weights

__all__ = ["dblp_like", "tweet_like", "aol_like"]


def _sample_sentence(
    rng: np.random.Generator,
    cumulative: np.ndarray,
    vocabulary: List[str],
    num_words: int,
) -> str:
    ranks = np.searchsorted(cumulative, rng.random(num_words), side="right")
    return " ".join(vocabulary[rank] for rank in ranks)


def _with_duplicates(
    rng: np.random.Generator,
    base: List[str],
    cardinality: int,
    mutate,
) -> List[str]:
    """Top up to ``cardinality`` with mutated copies, shuffled deterministically."""
    strings = list(base)
    num_duplicates = max(0, cardinality - len(base))
    sources = rng.integers(0, len(base), size=num_duplicates)
    for source in sources.tolist():
        strings.append(mutate(base[source]))
    permutation = rng.permutation(len(strings))
    return [strings[i] for i in permutation][:cardinality]


def dblp_like(cardinality: int, seed: int = 0) -> List[str]:
    """Bibliographic titles: 6-18 words, skewed vocabulary, ~8% variants."""
    rng = np.random.default_rng(seed)
    vocab_size = max(2000, cardinality // 4)
    vocabulary = [make_word(i) for i in range(vocab_size)]
    cumulative = np.cumsum(zipf_weights(vocab_size, 1.05))
    base = [
        _sample_sentence(rng, cumulative, vocabulary, int(rng.integers(6, 19)))
        for _ in range(int(cardinality * 0.92))
    ]

    def mutate(title: str) -> str:
        words = title.split()
        roll = rng.random()
        if roll < 0.4 and len(words) > 2:
            words = words[:-1]  # truncated variant
        elif roll < 0.7:
            words = words + [vocabulary[int(rng.integers(0, 200))]]
        else:
            position = int(rng.integers(0, len(words)))
            words[position] = vocabulary[int(rng.integers(0, vocab_size))]
        return " ".join(words)

    return _with_duplicates(rng, base, cardinality, mutate)


def tweet_like(cardinality: int, seed: int = 1) -> List[str]:
    """Posts: 8-35 words, heavy-tailed vocabulary, ~5% retweet variants."""
    rng = np.random.default_rng(seed)
    # vocabulary scales sublinearly with the corpus (Heaps' law) so that
    # posting lists lengthen as the corpus grows, as in the real Tweet data
    vocab_size = max(1500, cardinality // 5)
    vocabulary = [make_word(i) for i in range(vocab_size)]
    cumulative = np.cumsum(zipf_weights(vocab_size, 1.2))
    base = [
        _sample_sentence(rng, cumulative, vocabulary, int(rng.integers(8, 36)))
        for _ in range(int(cardinality * 0.95))
    ]

    def mutate(post: str) -> str:
        words = post.split()
        if rng.random() < 0.5:
            return " ".join(["rt"] + words)
        position = int(rng.integers(0, len(words)))
        words[position] = vocabulary[int(rng.integers(0, vocab_size))]
        return " ".join(words)

    return _with_duplicates(rng, base, cardinality, mutate)


_QUERY_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def aol_like(cardinality: int, seed: int = 2) -> List[str]:
    """Query-log strings: ~21 characters, ~12% typo-injected reformulations."""
    rng = np.random.default_rng(seed)
    vocab_size = max(1500, cardinality // 8)
    vocabulary = [make_word(i) for i in range(vocab_size)]
    cumulative = np.cumsum(zipf_weights(vocab_size, 1.1))
    base = [
        _sample_sentence(rng, cumulative, vocabulary, int(rng.integers(1, 5)))
        for _ in range(int(cardinality * 0.88))
    ]

    def mutate(query: str) -> str:
        characters = list(query)
        edits = int(rng.integers(1, 4))
        for _ in range(edits):
            operation = rng.random()
            position = int(rng.integers(0, max(1, len(characters))))
            letter = _QUERY_ALPHABET[int(rng.integers(0, 26))]
            if operation < 0.34 and characters:
                characters[min(position, len(characters) - 1)] = letter
            elif operation < 0.67:
                characters.insert(position, letter)
            elif characters:
                del characters[min(position, len(characters) - 1)]
        return "".join(characters)

    return _with_duplicates(rng, base, cardinality, mutate)
