"""Synthetic product reviews (the Table 7.4 case-study substitute).

The paper's case study uses the Amazon Reviews 5-core corpus (~7 GB of raw
text) to show that Uncomp/PForDelta indexes overflow a 16 GB machine while
CSS fits.  We reproduce the *regime* at configurable scale: long, templated
review texts with a large skewed vocabulary and heavy phrase reuse (users
echo product names and stock phrases), yielding the dense inverted lists the
case study's sizes come from.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ._words import make_word, zipf_weights

__all__ = ["amazon_like"]


def amazon_like(cardinality: int, seed: int = 4) -> List[str]:
    """Reviews of 20-120 words with reused phrase templates."""
    rng = np.random.default_rng(seed)
    vocab_size = max(8000, cardinality)
    vocabulary = [make_word(i) for i in range(vocab_size)]
    cumulative = np.cumsum(zipf_weights(vocab_size, 1.15))

    # stock phrases: short word sequences echoed across reviews
    num_phrases = max(50, cardinality // 100)
    phrases = []
    for _ in range(num_phrases):
        ranks = np.searchsorted(
            cumulative, rng.random(int(rng.integers(3, 7))), side="right"
        )
        phrases.append(" ".join(vocabulary[rank] for rank in ranks))

    reviews: List[str] = []
    for _ in range(cardinality):
        target_words = int(rng.integers(20, 121))
        pieces: List[str] = []
        count = 0
        while count < target_words:
            if rng.random() < 0.3:
                phrase = phrases[int(rng.integers(0, num_phrases))]
                pieces.append(phrase)
                count += phrase.count(" ") + 1
            else:
                rank = int(
                    np.searchsorted(cumulative, rng.random(), side="right")
                )
                pieces.append(vocabulary[rank])
                count += 1
        reviews.append(" ".join(pieces))
    return reviews
