"""Deterministic pseudo-word machinery shared by the text generators.

Real corpora are unavailable offline, so the generators synthesize them:
vocabularies of pronounceable pseudo-words, sampled with Zipfian skew —
matching the rank-frequency shape that makes inverted lists skewed, which is
the regime CSS's variable-length partitioning exploits (Chapter 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_word", "zipf_weights", "sample_ranks"]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"
_SYLLABLES = [c + v for c in _CONSONANTS for v in _VOWELS]


def make_word(index: int) -> str:
    """The ``index``-th pseudo-word: a unique syllable expansion."""
    syllables = []
    index += 1
    while index > 0:
        index, remainder = divmod(index, len(_SYLLABLES))
        syllables.append(_SYLLABLES[remainder])
    return "".join(syllables)


def zipf_weights(size: int, skew: float) -> np.ndarray:
    """Normalized Zipf rank weights ``rank^-skew`` for a vocabulary."""
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def sample_ranks(
    rng: np.random.Generator, cumulative: np.ndarray, count: int
) -> np.ndarray:
    """Inverse-CDF sampling of vocabulary ranks (with replacement)."""
    return np.searchsorted(cumulative, rng.random(count), side="right")
