"""Mann-et-al.-style synthetic set generators (the scalability experiments).

Figure 7.4/7.5 use the set-similarity-join benchmark generator of Mann,
Augsten & Bouros with the parameters the paper quotes: a Zipf dataset
(average set size 50, universe 116,346) and a Uniform dataset (average set
size 25, universe 150).  Records are emitted as space-joined integer tokens
so they flow through the same tokenization path as the text corpora.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ._words import zipf_weights

__all__ = ["zipf_sets", "uniform_sets"]


def _sets_to_strings(sets: List[np.ndarray]) -> List[str]:
    return [" ".join(str(token) for token in record) for record in sets]


def _draw_set(
    rng: np.random.Generator, cumulative: np.ndarray, size: int, universe: int
) -> np.ndarray:
    """A set of ``size`` distinct tokens sampled by the given distribution."""
    size = min(size, universe)
    chosen: set = set()
    while len(chosen) < size:
        needed = size - len(chosen)
        draws = np.searchsorted(
            cumulative, rng.random(max(needed * 2, 8)), side="right"
        )
        chosen.update(draws.tolist())
    return np.sort(np.asarray(list(chosen), dtype=np.int64))[:size]


def zipf_sets(
    cardinality: int,
    average_size: int = 50,
    universe: int = 116346,
    skew: float = 1.0,
    seed: int = 5,
) -> List[str]:
    """Zipf-distributed token sets (the paper's Zipf scalability dataset)."""
    rng = np.random.default_rng(seed)
    cumulative = np.cumsum(zipf_weights(universe, skew))
    sizes = np.maximum(1, rng.poisson(average_size, size=cardinality))
    return _sets_to_strings(
        [_draw_set(rng, cumulative, int(size), universe) for size in sizes]
    )


def uniform_sets(
    cardinality: int,
    average_size: int = 25,
    universe: int = 150,
    seed: int = 6,
) -> List[str]:
    """Uniformly-distributed token sets (the paper's Uniform dataset)."""
    rng = np.random.default_rng(seed)
    sizes = np.clip(
        rng.poisson(average_size, size=cardinality), 1, universe
    )
    records = []
    for size in sizes:
        tokens = rng.choice(universe, size=int(size), replace=False)
        records.append(np.sort(tokens.astype(np.int64)))
    return _sets_to_strings(records)
