"""Synthetic DNA reads (the paper's DNA dataset substitute).

Sequences are assembled from a shared motif pool with point mutations, which
reproduces the two properties that matter for the 6-gram experiments: a tiny
signature universe (4^6 upper-bounds the distinct 6-grams) producing very
long, very skewed inverted lists — the regime where CSS's variable-length
blocks beat MILC hardest (Table 7.2, DNA row) — and enough shared motifs
that similarity queries return non-trivial answers.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["dna_like"]

_BASES = np.array(list("ACGT"))


def dna_like(
    cardinality: int,
    average_length: int = 103,
    seed: int = 3,
    motif_pool: int = 64,
) -> List[str]:
    """Reads of ~``average_length`` bases built from a mutated motif pool."""
    rng = np.random.default_rng(seed)
    motif_lengths = rng.integers(12, 40, size=motif_pool)
    motifs = [
        "".join(_BASES[rng.integers(0, 4, size=int(length))])
        for length in motif_lengths
    ]
    # skewed motif popularity: a few motifs dominate, like repeats in genomes
    weights = np.arange(1, motif_pool + 1, dtype=np.float64) ** -1.1
    cumulative = np.cumsum(weights / weights.sum())

    reads: List[str] = []
    for _ in range(cardinality):
        target = max(10, int(rng.normal(average_length, average_length * 0.2)))
        pieces: List[str] = []
        length = 0
        while length < target:
            motif = motifs[int(np.searchsorted(cumulative, rng.random()))]
            mutated = list(motif)
            for position in range(len(mutated)):
                if rng.random() < 0.03:  # point mutation
                    mutated[position] = str(_BASES[int(rng.integers(0, 4))])
            pieces.append("".join(mutated))
            length += len(motif)
        reads.append("".join(pieces)[:target])
    return reads
