"""Dataset registry: named, scaled, tokenization-ready workloads.

Maps the paper's dataset names (Table 7.1) to the synthetic generators, with
per-dataset tokenization mode (3-grams for DBLP, 6-grams for DNA, words for
Tweet/AOL-words…) and the similarity metric each is used with in Chapter 7.
``REPRO_SCALE`` (environment variable, default 1.0) scales cardinalities so
the whole evaluation suite runs on a laptop; the full-paper cardinalities
are recorded for reference in :data:`PAPER_CARDINALITIES`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..similarity.tokenize import TokenizedCollection, tokenize_collection
from .amazon import amazon_like
from .dna import dna_like
from .synthetic import uniform_sets, zipf_sets
from .text import aol_like, dblp_like, tweet_like

__all__ = [
    "Dataset",
    "load_dataset",
    "dataset_names",
    "default_cardinality",
    "repro_scale",
    "PAPER_CARDINALITIES",
]

#: cardinalities the paper reports (Table 7.1 / Section 7.4).
PAPER_CARDINALITIES: Dict[str, int] = {
    "dblp": 10_000_000,
    "tweet": 2_000_000,
    "dna": 1_000_000,
    "aol": 1_200_000,
    "amazon": 8_900_000,
    "zipf": 10_000_000,
    "uniform": 10_000_000,
}

#: laptop-scale defaults at REPRO_SCALE=1.0, preserving the relative sizes.
_BASE_CARDINALITIES: Dict[str, int] = {
    "dblp": 20_000,
    "tweet": 8_000,
    "dna": 3_000,
    "aol": 10_000,
    "amazon": 4_000,
    "zipf": 20_000,
    "uniform": 20_000,
}

_GENERATORS: Dict[str, Callable[[int], List[str]]] = {
    "dblp": lambda n: dblp_like(n, seed=0),
    "tweet": lambda n: tweet_like(n, seed=1),
    "dna": lambda n: dna_like(n, seed=3),
    "aol": lambda n: aol_like(n, seed=2),
    "amazon": lambda n: amazon_like(n, seed=4),
    "zipf": lambda n: zipf_sets(n, seed=5),
    "uniform": lambda n: uniform_sets(n, seed=6),
}

#: (tokenization mode, q) per dataset — Section 7.1.
_TOKENIZATION: Dict[str, tuple] = {
    "dblp": ("qgram", 3),
    "tweet": ("word", 0),
    "dna": ("qgram", 6),
    "aol": ("qgram", 2),
    "amazon": ("word", 0),
    "zipf": ("word", 0),
    "uniform": ("word", 0),
}

#: similarity metric each dataset is evaluated with in Chapter 7.
_METRICS: Dict[str, str] = {
    "dblp": "jaccard",
    "tweet": "jaccard",
    "dna": "jaccard",
    "aol": "edit_distance",
    "amazon": "jaccard",
    "zipf": "jaccard",
    "uniform": "jaccard",
}


def repro_scale() -> float:
    """The global dataset scale factor (``REPRO_SCALE`` env var)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_cardinality(name: str) -> int:
    """Scaled cardinality for a named dataset."""
    return max(100, int(_BASE_CARDINALITIES[name] * repro_scale()))


def dataset_names() -> List[str]:
    return sorted(_GENERATORS)


@dataclass
class Dataset:
    """A named, generated, tokenized workload."""

    name: str
    strings: List[str]
    collection: TokenizedCollection
    metric: str
    q: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = (
            self.collection.lengths
            if self.metric != "edit_distance"
            else np.asarray([len(text) for text in self.strings])
        )
        raw_bytes = sum(len(text) for text in self.strings)
        self.statistics = {
            "cardinality": len(self.strings),
            "average_length": float(np.mean(lengths)) if len(lengths) else 0.0,
            "size_mb": raw_bytes / 1024 / 1024,
            "distinct_tokens": self.collection.num_tokens,
        }


def load_dataset(name: str, cardinality: int = 0) -> Dataset:
    """Generate and tokenize a named dataset (0 = scaled default size)."""
    if name not in _GENERATORS:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        )
    if cardinality <= 0:
        cardinality = default_cardinality(name)
    strings = _GENERATORS[name](cardinality)
    mode, q = _TOKENIZATION[name]
    collection = tokenize_collection(strings, mode=mode, q=q)
    return Dataset(
        name=name,
        strings=strings,
        collection=collection,
        metric=_METRICS[name],
        q=q,
    )
